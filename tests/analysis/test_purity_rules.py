"""Fixture tests for the effect-inference rules: purity-stateless-tick,
warning-hook-inert and spawn-purity, with exact line assertions."""

from pathlib import Path

from repro.analysis import LintConfig, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, **config_kwargs: object) -> list:
    result = lint_paths([FIXTURES / name], LintConfig(**config_kwargs))
    assert result.parse_errors == 0
    return result.diagnostics


def rule_lines(diagnostics: list, rule_id: str) -> list[int]:
    return [d.line for d in diagnostics if d.rule_id == rule_id]


class TestPurityStatelessTick:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("purity_bad.py")
        assert rule_lines(diags, "purity-stateless-tick") == [25, 36, 44]

    def test_bad_fixture_messages_name_the_effect(self):
        diags = [d for d in lint_fixture("purity_bad.py")
                 if d.rule_id == "purity-stateless-tick"]
        by_line = {d.line: d.message for d in diags}
        assert "writes self._calls" in by_line[25]
        assert "mutates parameter" in by_line[36]
        assert "_scale" in by_line[36]  # helper named as the origin
        assert "numpy's global RNG" in by_line[44]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("purity_good.py"),
                          "purity-stateless-tick") == []

    def test_stateful_policy_declaring_false_is_clean(self):
        source = (
            "class TracePolicy:\n"
            "    tick_stateless = False\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        return ctx\n"
            "\n"
            "\n"
            "class Stateful(TracePolicy):\n"
            "    tick_stateless = False\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        self._n = 1\n"
            "        return ctx\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"purity-stateless-tick"})))
        assert result.diagnostics == []

    def test_pragma_suppresses_at_effect_site(self):
        source = (
            "class TracePolicy:\n"
            "    tick_stateless = False\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        return ctx\n"
            "\n"
            "\n"
            "class Caching(TracePolicy):\n"
            "    tick_stateless = True\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        self._memo = ctx"
            "  # oclint: disable=purity-stateless-tick\n"
            "        return ctx\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"purity-stateless-tick"})))
        assert result.diagnostics == []

    def test_inherited_decide_charged_once_to_the_defining_class(self):
        # The mutation lives in Base.decide; Sub inherits it.  One
        # diagnostic (for Base), not one per descendant.
        source = (
            "class TracePolicy:\n"
            "    tick_stateless = False\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        return ctx\n"
            "\n"
            "\n"
            "class Base(TracePolicy):\n"
            "    tick_stateless = True\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        self._n = 1\n"
            "        return ctx\n"
            "\n"
            "\n"
            "class Sub(Base):\n"
            "    pass\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"purity-stateless-tick"})))
        assert [d.line for d in result.diagnostics] == [12]
        assert "Base" in result.diagnostics[0].message

    def test_rng_draw_from_self_generator_flagged(self):
        source = (
            "class TracePolicy:\n"
            "    tick_stateless = False\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        return ctx\n"
            "\n"
            "\n"
            "class Jittery(TracePolicy):\n"
            "    tick_stateless = True\n"
            "\n"
            "    def decide(self, ctx: object) -> object:\n"
            "        return self._rng.normal()\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"purity-stateless-tick"})))
        assert [d.line for d in result.diagnostics] == [12]
        assert "generator state" in result.diagnostics[0].message


class TestWarningHookInert:
    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("warninghook_bad.py")
        assert rule_lines(diags, "warning-hook-inert") == [19, 26]

    def test_override_flagged_at_def_line(self):
        diags = [d for d in lint_fixture("warninghook_bad.py")
                 if d.rule_id == "warning-hook-inert"]
        by_line = {d.line: d.message for d in diags}
        assert "EagerHook" in by_line[19]
        assert "warning_inert remains True" in by_line[19]
        assert "FalseFlag" in by_line[26]
        assert "no-op" in by_line[26]

    def test_good_fixture_clean(self):
        assert rule_lines(lint_fixture("warninghook_good.py"),
                          "warning-hook-inert") == []

    def test_pragma_suppresses(self):
        source = (
            "class TracePolicy:\n"
            "    warning_inert = True\n"
            "\n"
            "    def on_warning(self, ctx: object) -> None:\n"
            "        return None\n"
            "\n"
            "\n"
            "class Hooked(TracePolicy):\n"
            "    def on_warning(self, ctx: object) -> None:"
            "  # oclint: disable=warning-hook-inert\n"
            "        self._seen = True\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"warning-hook-inert"})))
        assert result.diagnostics == []


class TestSpawnPurity:
    CONFIG = dict(worker_entrypoints=frozenset({"worker_main"}))

    def test_bad_fixture_exact_lines(self):
        diags = lint_fixture("spawnsafe_bad.py", **self.CONFIG)
        assert rule_lines(diags, "spawn-purity") == [11, 15]

    def test_helper_read_names_its_origin(self):
        diags = [d for d in lint_fixture("spawnsafe_bad.py", **self.CONFIG)
                 if d.rule_id == "spawn-purity"]
        by_line = {d.line: d.message for d in diags}
        assert "reads" in by_line[11] and "_LIMITS" in by_line[11]
        assert "via _lookup" in by_line[11]
        assert "writes" in by_line[15] and "_SHARED_CACHE" in by_line[15]

    def test_non_entrypoint_reads_unflagged(self):
        diags = lint_fixture("spawnsafe_bad.py", **self.CONFIG)
        assert 21 not in rule_lines(diags, "spawn-purity")

    def test_good_fixture_none_sentinel_clean(self):
        diags = lint_fixture(
            "spawnsafe_good.py",
            worker_entrypoints=frozenset({"worker_main", "_init_worker"}))
        assert rule_lines(diags, "spawn-purity") == []

    def test_no_entrypoints_means_no_diagnostics(self):
        diags = lint_fixture("spawnsafe_bad.py",
                             worker_entrypoints=frozenset())
        assert rule_lines(diags, "spawn-purity") == []

    def test_pragma_suppresses(self):
        source = (
            "_TABLE = {}\n"
            "\n"
            "\n"
            "def worker_main(job: int) -> int:\n"
            "    return len(_TABLE)  # oclint: disable=spawn-purity\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"spawn-purity"}),
                worker_entrypoints=frozenset({"worker_main"})))
        assert result.diagnostics == []

    def test_function_level_from_import_of_mutable_global(self):
        # Binds the parent object under fork but a fresh re-import under
        # spawn — the classic silent divergence.
        source = (
            "def worker_main(job: int) -> int:\n"
            "    from repro.analysis.registry import _REGISTRY\n"
            "    return len(_REGISTRY) + job\n")
        result = lint_source(
            source, config=LintConfig(
                select=frozenset({"spawn-purity"}),
                worker_entrypoints=frozenset({"worker_main"})))
        # _REGISTRY lives outside the linted set, so the import itself
        # cannot be classified; same-module mutable globals can.
        assert result.diagnostics == []
