"""Tests for the horizontal and vertical scalers."""

import pytest

from repro.autoscale.scaler import (
    HorizontalAutoscaler,
    ScalerConfig,
    VerticalScaler,
)

SLO = 10.0


def make_scaler(**kwargs):
    defaults = dict(high_fraction=0.8, low_fraction=0.4,
                    consecutive_ticks=2, scale_in_ticks=2,
                    boot_delay_s=100.0, cooldown_s=0.0, max_instances=5)
    defaults.update(kwargs)
    return HorizontalAutoscaler(ScalerConfig(**defaults), slo_ms=SLO)


class TestScalerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalerConfig(high_fraction=0.3, low_fraction=0.5)
        with pytest.raises(ValueError):
            ScalerConfig(consecutive_ticks=0)
        with pytest.raises(ValueError):
            ScalerConfig(scale_in_ticks=0)
        with pytest.raises(ValueError):
            ScalerConfig(min_instances=5, max_instances=2)
        with pytest.raises(ValueError):
            ScalerConfig(boot_delay_s=-1.0)


class TestHorizontalScaler:
    def test_scale_out_after_consecutive_highs(self):
        scaler = make_scaler()
        assert scaler.observe(0.0, 9.0) == 1    # one high tick: no action
        assert scaler.observe(1.0, 9.0) == 2    # second: scale out

    def test_single_spike_ignored(self):
        scaler = make_scaler()
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 5.0)  # back in band resets the streak
        assert scaler.observe(2.0, 9.0) == 1

    def test_boot_delay(self):
        scaler = make_scaler(boot_delay_s=100.0)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)  # desired becomes 2 at t=1
        assert scaler.active_instances(50.0) == 1   # still booting
        assert scaler.active_instances(101.0) == 2  # booted

    def test_scale_in_requires_longer_streak(self):
        scaler = make_scaler(consecutive_ticks=2, scale_in_ticks=4)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)   # scale to 2
        for t in range(2, 5):
            scaler.observe(float(t), 1.0)
        assert scaler.desired == 2  # only 3 low ticks so far
        scaler.observe(5.0, 1.0)
        assert scaler.desired == 1

    def test_scale_in_removes_booting_instance_first(self):
        scaler = make_scaler(boot_delay_s=1000.0, scale_in_ticks=2)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)   # desired 2, booting
        scaler.observe(2.0, 1.0)
        scaler.observe(3.0, 1.0)   # scale in: cancels the booting one
        assert scaler.desired == 1
        assert scaler.active_instances(2000.0) == 1

    def test_max_instances_respected(self):
        scaler = make_scaler(max_instances=2)
        for t in range(20):
            scaler.observe(float(t), 9.0)
        assert scaler.desired == 2

    def test_min_instances_respected(self):
        scaler = make_scaler()
        for t in range(20):
            scaler.observe(float(t), 0.1)
        assert scaler.desired == 1

    def test_cooldown_throttles_actions(self):
        scaler = make_scaler(cooldown_s=100.0)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)   # scale out at t=1
        scaler.observe(2.0, 9.0)
        scaler.observe(3.0, 9.0)   # in cooldown: no second scale-out
        assert scaler.desired == 2
        scaler.observe(102.0, 9.0)
        scaler.observe(103.0, 9.0)
        assert scaler.desired == 3

    def test_explicit_request_scale_out(self):
        scaler = make_scaler()
        added = scaler.request_scale_out(0.0, count=3)
        assert added == 3
        assert scaler.desired == 4

    def test_request_scale_out_clipped_at_max(self):
        scaler = make_scaler(max_instances=3)
        assert scaler.request_scale_out(0.0, count=10) == 2

    def test_scale_out_counter(self):
        scaler = make_scaler()
        scaler.request_scale_out(0.0, 2)
        assert scaler.scale_out_count == 2

    def test_invalid_initial_instances(self):
        with pytest.raises(ValueError):
            HorizontalAutoscaler(ScalerConfig(max_instances=2), SLO,
                                 initial_instances=5)

    def test_invalid_slo(self):
        with pytest.raises(ValueError):
            HorizontalAutoscaler(ScalerConfig(), slo_ms=0.0)


class TestVerticalScaler:
    def test_boost_after_consecutive_highs(self):
        scaler = VerticalScaler(ScalerConfig(consecutive_ticks=2), SLO)
        scaler.observe(0.0, 9.0)
        assert scaler.observe(1.0, 9.0) == 4.0

    def test_returns_to_turbo_when_low(self):
        scaler = VerticalScaler(ScalerConfig(consecutive_ticks=2), SLO)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)
        scaler.observe(2.0, 1.0)
        assert scaler.observe(3.0, 1.0) == 3.3

    def test_boost_ticks_counted(self):
        scaler = VerticalScaler(ScalerConfig(consecutive_ticks=1), SLO)
        scaler.observe(0.0, 9.0)
        scaler.observe(1.0, 9.0)
        assert scaler.boost_ticks == 2

    def test_invalid_frequencies(self):
        with pytest.raises(ValueError):
            VerticalScaler(ScalerConfig(), SLO, turbo_ghz=4.0, max_ghz=3.3)
