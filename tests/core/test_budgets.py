"""Tests for heterogeneous power budgets, pinned to the §IV-C example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budgets import (
    BudgetAssignment,
    compute_heterogeneous_budgets,
    fair_share_budgets,
)
from repro.core.types import ServerProfileReport


def profile(server_id, regular, requested, slot_s=300.0):
    regular = np.asarray(regular, dtype=float)
    requested = np.asarray(requested, dtype=float)
    return ServerProfileReport(
        server_id=server_id, slot_s=slot_s,
        regular_power_watts=regular,
        oc_requested_cores=requested,
        oc_granted_cores=requested)


class TestPaperWorkedExample:
    def test_section_4c_example(self):
        """Rack limit 1.3 kW; X: 400 W regular + 5 cores, Y: 300 W + 10
        cores, 10 W/core → X gets 600 W, Y gets 700 W."""
        profiles = [profile("X", [400.0], [5]), profile("Y", [300.0], [10])]
        assignment = compute_heterogeneous_budgets(
            1300.0, profiles, oc_delta_watts_per_core=10.0,
            even_headroom_fraction=0.0)
        assert assignment.budget_at("X", 0.0) == pytest.approx(600.0)
        assert assignment.budget_at("Y", 0.0) == pytest.approx(700.0)


class TestHeterogeneousBudgets:
    def test_budgets_sum_to_limit(self):
        profiles = [profile("a", [200.0, 250.0], [4, 0]),
                    profile("b", [300.0, 280.0], [0, 8])]
        assignment = compute_heterogeneous_budgets(1000.0, profiles, 10.0)
        for slot_t in (0.0, 300.0):
            assert assignment.total_at(slot_t) == pytest.approx(1000.0)

    def test_no_need_splits_headroom_evenly(self):
        profiles = [profile("a", [200.0], [0]), profile("b", [300.0], [0])]
        assignment = compute_heterogeneous_budgets(700.0, profiles, 10.0)
        assert assignment.budget_at("a", 0.0) == pytest.approx(300.0)
        assert assignment.budget_at("b", 0.0) == pytest.approx(400.0)

    def test_overcommitted_scales_proportionally(self):
        profiles = [profile("a", [600.0], [2]), profile("b", [600.0], [2])]
        assignment = compute_heterogeneous_budgets(600.0, profiles, 10.0)
        assert assignment.budget_at("a", 0.0) == pytest.approx(300.0)
        assert assignment.total_at(0.0) == pytest.approx(600.0)

    def test_even_fraction_guarantees_floor(self):
        """A server with zero recorded need still gets an even share."""
        profiles = [profile("needy", [100.0], [20]),
                    profile("quiet", [100.0], [0])]
        assignment = compute_heterogeneous_budgets(
            500.0, profiles, 10.0, even_headroom_fraction=0.3)
        # Headroom 300; quiet gets 0.3*300/2 = 45 on top of its regular.
        assert assignment.budget_at("quiet", 0.0) == pytest.approx(145.0)

    def test_need_weighting(self):
        profiles = [profile("a", [100.0], [1]), profile("b", [100.0], [3])]
        assignment = compute_heterogeneous_budgets(
            600.0, profiles, 10.0, even_headroom_fraction=0.0)
        extra_a = assignment.budget_at("a", 0.0) - 100.0
        extra_b = assignment.budget_at("b", 0.0) - 100.0
        assert extra_b == pytest.approx(3 * extra_a)

    def test_mismatched_profiles_rejected(self):
        profiles = [profile("a", [100.0], [1]),
                    profile("b", [100.0, 200.0], [1, 1])]
        with pytest.raises(ValueError, match="slot"):
            compute_heterogeneous_budgets(500.0, profiles, 10.0)

    def test_validation(self):
        p = [profile("a", [100.0], [1])]
        with pytest.raises(ValueError):
            compute_heterogeneous_budgets(0.0, p, 10.0)
        with pytest.raises(ValueError):
            compute_heterogeneous_budgets(100.0, [], 10.0)
        with pytest.raises(ValueError):
            compute_heterogeneous_budgets(100.0, p, 0.0)
        with pytest.raises(ValueError):
            compute_heterogeneous_budgets(100.0, p, 10.0,
                                          even_headroom_fraction=1.5)

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=30)
    def test_budgets_always_sum_to_limit(self, n_servers, n_slots):
        rng = np.random.default_rng(n_servers * 10 + n_slots)
        profiles = [
            profile(f"s{i}", rng.uniform(100, 400, n_slots),
                    rng.integers(0, 16, n_slots))
            for i in range(n_servers)
        ]
        limit = float(rng.uniform(200, 3000))
        assignment = compute_heterogeneous_budgets(limit, profiles, 9.5)
        for s in range(n_slots):
            assert assignment.total_at(s * 300.0) == pytest.approx(limit)

    @given(st.integers(2, 5))
    @settings(max_examples=20)
    def test_budget_at_least_regular_when_headroom_exists(self, n):
        rng = np.random.default_rng(n)
        regular = rng.uniform(100, 200, (n, 1))
        profiles = [profile(f"s{i}", regular[i], [int(rng.integers(0, 8))])
                    for i in range(n)]
        limit = float(regular.sum() + 500.0)
        assignment = compute_heterogeneous_budgets(limit, profiles, 9.5)
        for i in range(n):
            assert assignment.budget_at(f"s{i}", 0.0) >= regular[i][0] - 1e-9


class TestFairShare:
    def test_even_split(self):
        profiles = [profile("a", [100.0], [5]), profile("b", [400.0], [0])]
        assignment = fair_share_budgets(1000.0, profiles)
        assert assignment.budget_at("a", 0.0) == 500.0
        assert assignment.budget_at("b", 0.0) == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_share_budgets(0.0, [profile("a", [1.0], [0])])
        with pytest.raises(ValueError):
            fair_share_budgets(100.0, [])


class TestBudgetAssignment:
    def make(self):
        return BudgetAssignment(
            slot_s=300.0, budgets={"a": np.array([1.0, 2.0, 3.0])})

    def test_in_horizon_lookup(self):
        assignment = self.make()
        assert assignment.budget_at("a", 0.0) == 1.0
        assert assignment.budget_at("a", 350.0) == 2.0
        assert assignment.budget_at("a", 899.0) == 3.0

    def test_plan_horizon(self):
        assert self.make().plan_horizon == 900.0

    def test_out_of_horizon_raises_by_default(self):
        """Regression: t == plan_horizon is already *past* the plan
        (slots are half-open) — the old implicit ``% len`` silently
        handed back the week-start budget there."""
        assignment = self.make()
        with pytest.raises(LookupError, match="horizon"):
            assignment.budget_at("a", assignment.plan_horizon)
        with pytest.raises(LookupError, match="horizon"):
            assignment.budget_at("a", -1.0)
        with pytest.raises(LookupError, match="horizon"):
            assignment.total_at(assignment.plan_horizon)

    def test_clamp_holds_boundary_slot(self):
        assignment = self.make()
        horizon = assignment.plan_horizon
        assert assignment.budget_at("a", horizon,
                                    out_of_horizon="clamp") == 3.0
        assert assignment.budget_at("a", horizon + 5000.0,
                                    out_of_horizon="clamp") == 3.0
        assert assignment.budget_at("a", -1.0,
                                    out_of_horizon="clamp") == 1.0

    def test_wrap_is_periodic(self):
        assignment = self.make()
        assert assignment.budget_at("a", 3 * 300.0,
                                    out_of_horizon="wrap") == 1.0
        assert assignment.budget_at("a", 4 * 300.0 + 50.0,
                                    out_of_horizon="wrap") == 2.0

    def test_modes_agree_in_horizon(self):
        assignment = self.make()
        for t in (0.0, 299.0, 300.0, 899.0):
            values = {assignment.budget_at("a", t, out_of_horizon=mode)
                      for mode in ("raise", "clamp", "wrap")}
            assert len(values) == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="out_of_horizon"):
            self.make().budget_at("a", 0.0, out_of_horizon="extrapolate")

    def test_unknown_server_raises(self):
        assignment = BudgetAssignment(slot_s=300.0,
                                      budgets={"a": np.array([1.0])})
        with pytest.raises(KeyError):
            assignment.budget_at("zz", 0.0)


class TestPerSlotLimit:
    """Array rack limits (the oversubscribed planning series)."""

    def test_scalar_and_constant_array_bitwise_equal(self):
        rng = np.random.default_rng(9)
        profiles = [profile(f"s{i}", rng.uniform(100, 400, 4),
                            rng.integers(0, 16, 4)) for i in range(3)]
        scalar = compute_heterogeneous_budgets(900.0, profiles, 9.5)
        array = compute_heterogeneous_budgets(np.full(4, 900.0),
                                              profiles, 9.5)
        for sid in scalar.budgets:
            assert np.array_equal(scalar.budgets[sid], array.budgets[sid])

    def test_per_slot_limit_sums_per_slot(self):
        profiles = [profile("a", [200.0, 200.0], [4, 4]),
                    profile("b", [300.0, 300.0], [0, 8])]
        limit = np.array([1000.0, 1200.0])
        assignment = compute_heterogeneous_budgets(limit, profiles, 10.0)
        assert assignment.total_at(0.0) == pytest.approx(1000.0)
        assert assignment.total_at(300.0) == pytest.approx(1200.0)

    def test_mixed_regimes_across_slots(self):
        # Slot 0 overcommitted, slot 1 has headroom: both sum to their
        # own slot's limit.
        profiles = [profile("a", [600.0, 100.0], [2, 2]),
                    profile("b", [600.0, 100.0], [2, 0])]
        limit = np.array([600.0, 800.0])
        assignment = compute_heterogeneous_budgets(limit, profiles, 10.0)
        assert assignment.total_at(0.0) == pytest.approx(600.0)
        assert assignment.total_at(300.0) == pytest.approx(800.0)

    def test_wrong_length_rejected(self):
        profiles = [profile("a", [100.0, 100.0], [1, 1])]
        with pytest.raises(ValueError, match="shape"):
            compute_heterogeneous_budgets(np.array([500.0]), profiles, 10.0)

    def test_nonpositive_slot_rejected(self):
        profiles = [profile("a", [100.0, 100.0], [1, 1])]
        with pytest.raises(ValueError, match="> 0"):
            compute_heterogeneous_budgets(np.array([500.0, 0.0]),
                                          profiles, 10.0)
