"""Tests for configuration and message types."""

import pytest

from repro.core.config import SmartOClockConfig
from repro.core.types import (
    AdmissionDecision,
    ExhaustionKind,
    ExhaustionSignal,
    OverclockRequest,
    RejectionReason,
    RequestKind,
)


class TestConfig:
    def test_paper_defaults(self):
        """Defaults follow the paper's stated values."""
        config = SmartOClockConfig()
        assert config.explore_step_watts == 20.0     # §IV-D
        assert config.explore_confirm_s == 30.0      # §IV-D
        assert config.warning_fraction == 0.95       # §IV-D
        assert config.exhaustion_window_s == 900.0   # §IV-D (15 min)
        assert config.oc_budget_fraction == 0.10     # §IV-B
        assert config.epoch_seconds == 7 * 86400.0   # §IV-B (week)

    def test_variant_factories(self):
        config = SmartOClockConfig()
        naive = config.as_naive()
        assert not naive.enable_admission_control
        assert not naive.enable_exploration
        no_feedback = config.as_no_feedback()
        assert no_feedback.enable_admission_control
        assert not no_feedback.enable_exploration
        no_warning = config.as_no_warning()
        assert no_warning.enable_exploration
        assert not no_warning.enable_warnings

    def test_validation(self):
        with pytest.raises(ValueError):
            SmartOClockConfig(control_interval_s=0.0)
        with pytest.raises(ValueError):
            SmartOClockConfig(warning_fraction=1.5)
        with pytest.raises(ValueError):
            SmartOClockConfig(explore_step_watts=0.0)
        with pytest.raises(ValueError):
            SmartOClockConfig(oc_budget_fraction=-0.1)
        with pytest.raises(ValueError):
            SmartOClockConfig(explore_backoff_factor=0.5)

    def test_frozen(self):
        config = SmartOClockConfig()
        with pytest.raises(Exception):
            config.warning_fraction = 0.5  # type: ignore


class TestOverclockRequest:
    def test_scheduled_requires_duration(self):
        with pytest.raises(ValueError, match="duration"):
            OverclockRequest(vm_id=1, kind=RequestKind.SCHEDULED,
                             target_freq_ghz=4.0, n_cores=4, time=0.0)

    def test_metrics_duration_optional(self):
        request = OverclockRequest(vm_id=1, kind=RequestKind.METRICS,
                                   target_freq_ghz=4.0, n_cores=4,
                                   time=0.0)
        assert request.duration_s is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OverclockRequest(vm_id=1, kind=RequestKind.METRICS,
                             target_freq_ghz=0.0, n_cores=4, time=0.0)
        with pytest.raises(ValueError):
            OverclockRequest(vm_id=1, kind=RequestKind.METRICS,
                             target_freq_ghz=4.0, n_cores=0, time=0.0)
        with pytest.raises(ValueError):
            OverclockRequest(vm_id=1, kind=RequestKind.SCHEDULED,
                             target_freq_ghz=4.0, n_cores=4, time=0.0,
                             duration_s=-1.0)


class TestAdmissionDecision:
    def test_grant_carries_no_reason(self):
        with pytest.raises(ValueError):
            AdmissionDecision(True, reason=RejectionReason.POWER_BUDGET)

    def test_rejection_needs_reason(self):
        with pytest.raises(ValueError):
            AdmissionDecision(False)

    def test_valid_combinations(self):
        assert AdmissionDecision(True).granted
        rejection = AdmissionDecision(
            False, RejectionReason.LIFETIME_BUDGET)
        assert rejection.reason is RejectionReason.LIFETIME_BUDGET


class TestExhaustionSignal:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ExhaustionSignal("s", ExhaustionKind.POWER, 0.0, -1.0)

    def test_valid(self):
        signal = ExhaustionSignal("s", ExhaustionKind.LIFETIME, 5.0, 100.0)
        assert signal.kind is ExhaustionKind.LIFETIME
