"""Tests for risk-aware oversubscription admission (ROADMAP item 2)."""

import numpy as np
import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.oversubscription import (
    RISK_LEVELS,
    RISK_ORDER,
    OversubscriptionController,
    RiskProfile,
)
from repro.core.platform import SmartOClockPlatform


class TestRiskLadder:
    def test_order_is_least_to_most_risk(self):
        assert RISK_ORDER == ("conservative", "balanced", "aggressive")
        quantiles = [RISK_LEVELS[r].quantile for r in RISK_ORDER]
        margins = [RISK_LEVELS[r].margin_fraction for r in RISK_ORDER]
        fractions = [RISK_LEVELS[r].max_extra_fraction for r in RISK_ORDER]
        assert quantiles == sorted(quantiles, reverse=True)
        assert margins == sorted(margins, reverse=True)
        assert fractions == sorted(fractions)  # riskier admits more

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="quantile"):
            RiskProfile("bad", quantile=0.0, margin_fraction=1.0,
                        max_extra_fraction=0.1)
        with pytest.raises(ValueError, match="margin"):
            RiskProfile("bad", quantile=0.9, margin_fraction=-0.1,
                        max_extra_fraction=0.1)
        with pytest.raises(ValueError, match="max_extra_fraction"):
            RiskProfile("bad", quantile=0.9, margin_fraction=0.5,
                        max_extra_fraction=1.5)


class TestController:
    def test_margin_and_clip_math(self):
        controller = OversubscriptionController("balanced",
                                                max_extra_fraction=0.15)
        limit = 1000.0
        hi = np.array([700.0, 900.0, 1100.0, 400.0])
        mid = np.array([600.0, 880.0, 1000.0, 400.0])
        decision = controller.admit(limit, hi, mid)
        # margin = 0.5 * (hi - mid); admitted = clip(limit - hi - margin,
        # 0, 150).
        assert decision.margin_watts == pytest.approx(
            [50.0, 10.0, 50.0, 0.0])
        assert decision.admitted_extra_watts == pytest.approx(
            [150.0, 90.0, 0.0, 150.0])
        assert decision.planning_limit_watts == pytest.approx(
            [1150.0, 1090.0, 1000.0, 1150.0])

    def test_never_admits_when_prediction_reaches_limit(self):
        controller = OversubscriptionController("aggressive")
        decision = controller.admit(500.0, np.array([600.0]),
                                    np.array([500.0]))
        assert not decision.any_admitted

    def test_cap_at_max_extra_fraction(self):
        controller = OversubscriptionController("aggressive",
                                                max_extra_fraction=0.1)
        decision = controller.admit(1000.0, np.array([100.0]),
                                    np.array([100.0]))
        assert decision.admitted_extra_watts == pytest.approx([100.0])

    def test_monotone_across_risk_ladder(self):
        # With matched inputs (same hi/mid series), admitted headroom is
        # monotone nondecreasing from conservative to aggressive — but
        # each level actually uses its own quantile of the same
        # distribution, so feed per-level hi series that are themselves
        # quantile-monotone.
        rng = np.random.default_rng(5)
        samples = rng.normal(600.0, 60.0, size=(200, 24))
        mid = np.quantile(samples, 0.5, axis=0)
        limit = 900.0
        admitted = []
        for name in RISK_ORDER:
            hi = np.quantile(samples, RISK_LEVELS[name].quantile, axis=0)
            decision = OversubscriptionController(name).admit(limit, hi, mid)
            admitted.append(decision.admitted_extra_watts)
        for safer, riskier in zip(admitted, admitted[1:]):
            assert np.all(riskier >= safer)

    def test_scalar_and_array_limit_agree(self):
        controller = OversubscriptionController("balanced")
        hi = np.array([500.0, 700.0])
        mid = np.array([450.0, 650.0])
        scalar = controller.admit(800.0, hi, mid)
        array = controller.admit(np.array([800.0, 800.0]), hi, mid)
        assert np.array_equal(scalar.admitted_extra_watts,
                              array.admitted_extra_watts)

    def test_validation(self):
        with pytest.raises(ValueError, match="risk level"):
            OversubscriptionController("reckless")
        with pytest.raises(ValueError, match="max_extra_fraction"):
            OversubscriptionController("balanced", max_extra_fraction=1.5)
        controller = OversubscriptionController("balanced")
        with pytest.raises(ValueError, match="1-D"):
            controller.admit(100.0, np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError, match="limit"):
            controller.admit(0.0, np.ones(2), np.ones(2))
        with pytest.raises(ValueError, match="finite"):
            controller.admit(100.0, np.array([np.nan]), np.array([1.0]))


class TestConfigKnobs:
    def test_defaults_off(self):
        config = SmartOClockConfig()
        assert not config.enable_oversubscription

    def test_with_oversubscription_variant(self):
        config = SmartOClockConfig().with_oversubscription("aggressive")
        assert config.enable_oversubscription
        assert config.osub_risk_level == "aggressive"

    def test_bad_risk_level_rejected(self):
        with pytest.raises(ValueError, match="osub_risk_level"):
            SmartOClockConfig(osub_risk_level="reckless")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="osub_max_extra_fraction"):
            SmartOClockConfig(osub_max_extra_fraction=-0.1)


def build_platform(rack_limit=8000.0, n_servers=2, config=None):
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    return SmartOClockPlatform(dc, config), servers


class TestPlatformWiring:
    def run_cycle(self, config, rack_limit=8000.0):
        platform, servers = build_platform(rack_limit=rack_limit,
                                           config=config)
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        for i in range(6):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1800.0)
        return platform

    def test_profile_reports_carry_hi_series(self):
        platform = self.run_cycle(
            SmartOClockConfig().with_oversubscription("balanced"))
        soa = platform.soas["s0"]
        report = soa.build_profile_report()
        assert report.hi_quantile_power_watts is not None
        assert np.all(report.hi_quantile_power_watts
                      >= report.regular_power_watts)

    def test_profile_reports_plain_without_flag(self):
        platform = self.run_cycle(SmartOClockConfig())
        report = platform.soas["s0"].build_profile_report()
        assert report.hi_quantile_power_watts is None

    def test_goa_budgets_against_planning_limit(self):
        config = SmartOClockConfig().with_oversubscription("balanced")
        platform = self.run_cycle(config)
        goa = platform.goas["r0"]
        decision = goa.last_osub_decision
        assert decision is not None
        assert decision.risk_level == "balanced"
        # An idle-ish rack far below an 8 kW limit admits the maximum.
        assert decision.any_admitted
        assignment = goa.assignment
        assert assignment is not None
        for slot in (0, 1, 100):
            t = slot * config.budget_slot_s
            assert assignment.total_at(t) == pytest.approx(
                float(decision.planning_limit_watts[slot]))

    def test_no_decision_without_flag(self):
        platform = self.run_cycle(SmartOClockConfig())
        goa = platform.goas["r0"]
        assert goa.last_osub_decision is None
        assert goa.assignment is not None
        assert goa.assignment.total_at(0.0) == pytest.approx(8000.0)

    def test_admitted_bounded_by_max_fraction(self):
        import dataclasses
        config = dataclasses.replace(
            SmartOClockConfig().with_oversubscription("aggressive"),
            osub_max_extra_fraction=0.05)
        platform = self.run_cycle(config)
        decision = platform.goas["r0"].last_osub_decision
        assert decision is not None
        assert np.all(decision.admitted_extra_watts <= 0.05 * 8000.0 + 1e-9)
