"""Tests for the prioritized feedback loop (§IV-D)."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Server, VirtualMachine
from repro.core.enforcement import FeedbackLoop

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz


def setup_server(vm_specs):
    """vm_specs: list of (cores, util, priority)."""
    server = Server("s", DEFAULT_POWER_MODEL)
    vms = []
    for cores, util, prio in vm_specs:
        vm = VirtualMachine(cores, utilization=util, priority=prio)
        server.place_vm(vm)
        vms.append(vm)
    return server, vms


class TestRampUp:
    def test_reaches_target_under_generous_budget(self):
        server, (vm,) = setup_server([(8, 1.0, 0)])
        loop = FeedbackLoop(server, buffer_watts=10.0)
        loop.engage(vm, MAX)
        loop.tick(limit_watts=1000.0)
        assert vm.freq_ghz == pytest.approx(MAX)
        assert loop.all_at_target()

    def test_holds_below_threshold_band(self):
        server, (vm,) = setup_server([(8, 1.0, 0)])
        loop = FeedbackLoop(server, buffer_watts=10.0)
        loop.engage(vm, MAX)
        base = server.power_watts()
        limit = base + 30.0  # room for only a few steps
        loop.tick(limit)
        assert server.power_watts() < limit
        assert TURBO < vm.freq_ghz < MAX
        assert loop.constrained(limit)

    def test_higher_priority_vm_boosted_first(self):
        server, (lo, hi) = setup_server([(8, 1.0, 1), (8, 1.0, 10)])
        loop = FeedbackLoop(server, buffer_watts=5.0)
        loop.engage(lo, MAX)
        loop.engage(hi, MAX)
        base = server.power_watts()
        loop.tick(base + 45.0)  # room for roughly half of one VM's boost
        assert hi.freq_ghz > lo.freq_ghz

    def test_max_steps_bounds_work_per_tick(self):
        server, (vm,) = setup_server([(8, 1.0, 0)])
        loop = FeedbackLoop(server, buffer_watts=5.0)
        loop.engage(vm, MAX)
        loop.tick(limit_watts=1000.0, max_steps=2)
        assert vm.freq_ghz == pytest.approx(TURBO + 0.2)


class TestRampDown:
    def test_steps_down_when_over_limit(self):
        server, (vm,) = setup_server([(8, 1.0, 0)])
        server.set_vm_frequency(vm, MAX)
        loop = FeedbackLoop(server, buffer_watts=5.0)
        loop.engage(vm, MAX)
        high_power = server.power_watts()
        loop.tick(limit_watts=high_power - 20.0)
        assert vm.freq_ghz < MAX
        assert server.power_watts() < high_power

    def test_reported_draw_reread_after_step_down(self):
        """Regression: the tick's LoopAction must report the draw as
        measured *after* the down-phase — the pre-phase reading can show
        >= limit even though the loop already stepped power under it."""
        server, (vm,) = setup_server([(8, 1.0, 0)])
        server.set_vm_frequency(vm, MAX)
        loop = FeedbackLoop(server, buffer_watts=5.0)
        loop.engage(vm, MAX)
        action = loop.tick(limit_watts=server.power_watts() - 20.0)
        assert action.stepped_down > 0
        assert action.draw_watts == pytest.approx(server.power_watts())
        assert action.draw_watts < action.limit_watts

    def test_lower_priority_vm_sacrificed_first(self):
        server, (lo, hi) = setup_server([(8, 1.0, 1), (8, 1.0, 10)])
        server.set_vm_frequency(lo, MAX)
        server.set_vm_frequency(hi, MAX)
        loop = FeedbackLoop(server, buffer_watts=5.0)
        loop.engage(lo, MAX)
        loop.engage(hi, MAX)
        loop.tick(server.power_watts() - 30.0)
        assert lo.freq_ghz < hi.freq_ghz


class TestEngagement:
    def test_engage_unplaced_vm_rejected(self):
        server, _ = setup_server([])
        with pytest.raises(KeyError):
            FeedbackLoop(server).engage(VirtualMachine(2), MAX)

    def test_disengage_resets_to_turbo(self):
        server, (vm,) = setup_server([(4, 1.0, 0)])
        loop = FeedbackLoop(server)
        loop.engage(vm, MAX)
        loop.tick(1000.0)
        loop.disengage(vm)
        assert vm.freq_ghz == pytest.approx(TURBO)
        assert not loop.is_engaged(vm)

    def test_disengage_keep_frequency(self):
        server, (vm,) = setup_server([(4, 1.0, 0)])
        loop = FeedbackLoop(server)
        loop.engage(vm, MAX)
        loop.tick(1000.0)
        loop.disengage(vm, reset_to_turbo=False)
        assert vm.freq_ghz == pytest.approx(MAX)

    def test_disengage_all(self):
        server, vms = setup_server([(4, 1.0, 0), (4, 1.0, 0)])
        loop = FeedbackLoop(server)
        for vm in vms:
            loop.engage(vm, MAX)
        loop.disengage_all()
        assert loop.active_vms == 0

    def test_target_clamped_to_plan(self):
        server, (vm,) = setup_server([(4, 1.0, 0)])
        loop = FeedbackLoop(server)
        loop.engage(vm, 10.0)
        loop.tick(2000.0)
        assert vm.freq_ghz == pytest.approx(MAX)

    def test_removed_vm_pruned(self):
        server, (vm,) = setup_server([(4, 1.0, 0)])
        loop = FeedbackLoop(server)
        loop.engage(vm, MAX)
        server.remove_vm(vm)
        loop.tick(1000.0)  # must not raise
        assert loop.active_vms == 0

    def test_constrained_false_when_all_at_target(self):
        server, (vm,) = setup_server([(4, 1.0, 0)])
        loop = FeedbackLoop(server)
        loop.engage(vm, MAX)
        loop.tick(1000.0)
        assert not loop.constrained(1000.0)

    def test_invalid_limit(self):
        server, _ = setup_server([])
        with pytest.raises(ValueError):
            FeedbackLoop(server).tick(0.0)

    def test_invalid_buffer(self):
        server, _ = setup_server([])
        with pytest.raises(ValueError):
            FeedbackLoop(server, buffer_watts=-1.0)
