"""Tests for automatic threshold inference (§IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold_inference import (
    estimate_overclock_impact,
    infer_trigger_policy,
)


def diurnal_history(n=1000, peak=9.0, base=2.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, n)
    latency = base + (peak - base) * np.clip(np.sin(t), 0, 1)
    return latency + rng.normal(0, 0.1, n)


class TestImpactEstimate:
    def test_core_bound_impact(self):
        assert estimate_overclock_impact(freq_sensitivity=1.0) == \
            pytest.approx(4.0 / 3.3)

    def test_memory_bound_impact_small(self):
        assert estimate_overclock_impact(freq_sensitivity=0.2) < 1.05


class TestInference:
    def test_scale_up_at_budgeted_quantile(self):
        """Paper: 'use P90 of historical value if overclocking can be
        performed for 10% of the time only'."""
        history = diurnal_history()
        inferred = infer_trigger_policy(history, slo=12.0,
                                        budget_fraction=0.10)
        assert inferred.scale_up_value == pytest.approx(
            float(np.quantile(history, 0.90)), rel=1e-9)

    def test_scale_up_never_exceeds_slo(self):
        history = diurnal_history(peak=30.0)
        inferred = infer_trigger_policy(history, slo=12.0,
                                        budget_fraction=0.5)
        assert inferred.scale_up_value <= 12.0

    def test_stop_below_post_boost_level(self):
        """The dithering rule: the stop threshold sits below where the
        boosted metric is expected to settle."""
        history = diurnal_history()
        inferred = infer_trigger_policy(history, slo=12.0,
                                        overclock_impact=1.2,
                                        dithering_margin=0.25)
        post_boost = inferred.scale_up_value / 1.2
        assert inferred.scale_down_value < post_boost

    def test_smaller_budget_raises_threshold(self):
        history = diurnal_history()
        tight = infer_trigger_policy(history, slo=12.0,
                                     budget_fraction=0.05)
        loose = infer_trigger_policy(history, slo=12.0,
                                     budget_fraction=0.30)
        assert tight.scale_up_value >= loose.scale_up_value

    def test_policy_is_valid(self):
        inferred = infer_trigger_policy(diurnal_history(), slo=12.0)
        policy = inferred.policy
        assert 0 < policy.stop_fraction < policy.start_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            infer_trigger_policy([], slo=10.0)
        with pytest.raises(ValueError):
            infer_trigger_policy([1.0], slo=0.0)
        with pytest.raises(ValueError):
            infer_trigger_policy([1.0], slo=10.0, budget_fraction=1.0)
        with pytest.raises(ValueError):
            infer_trigger_policy([1.0], slo=10.0, overclock_impact=0.9)
        with pytest.raises(ValueError):
            infer_trigger_policy([1.0], slo=10.0, dithering_margin=1.0)

    @given(st.lists(st.floats(0.1, 100.0), min_size=5, max_size=200),
           st.floats(0.02, 0.5))
    @settings(max_examples=60)
    def test_always_produces_valid_policy(self, history, budget):
        inferred = infer_trigger_policy(history, slo=50.0,
                                        budget_fraction=budget)
        assert 0 < inferred.policy.stop_fraction \
            < inferred.policy.start_fraction

    def test_trigger_fires_for_budgeted_share(self):
        """End-to-end: the inferred policy triggers for roughly the
        lifetime-budgeted share of the history that produced it."""
        history = diurnal_history(n=5000)
        slo = 12.0
        inferred = infer_trigger_policy(history, slo,
                                        budget_fraction=0.10)
        fired = np.mean(history > inferred.policy.start_fraction * slo)
        assert 0.03 <= fired <= 0.2
