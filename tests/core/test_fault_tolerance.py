"""Fault-tolerance scenarios: the decentralization claims of §III Q5.

'If the centralized entity fails, then all overclocking requests would be
rejected. Making local overclocking decisions using assigned server power
budgets improves fault tolerance.'
"""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz


def build(n_servers=3, rack_limit=3000.0):
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    platform = SmartOClockPlatform(dc)
    return platform, servers


class TestGoaFailure:
    def test_overclocking_continues_without_goa_updates(self):
        """With the gOA dead (no budget updates ever), sOAs keep taking
        local decisions on the fair-share fallback."""
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        # Simulate gOA failure: never call force_budget_update and strip
        # the periodic update by using raw soa/manager ticks.
        service.observe(0.0, 9.5, 10.0)
        for soa in platform.soas.values():
            soa.control_tick(10.0, dt=10.0)
        assert vm.freq_ghz > TURBO  # local grant succeeded

    def test_stale_budgets_keep_working_after_goa_death(self):
        """Budgets pushed before the failure remain in force."""
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        for i in range(4):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1200.0)
        soa = platform.soas["s0"]
        assert soa._assignment is not None
        # gOA dies here; requests are still served from the assignment.
        service.observe(1500.0, 9.5, 10.0)
        soa.control_tick(1510.0, dt=10.0)
        assert soa.is_overclocking(vm.vm_id)

    def test_exploration_recovers_from_stale_budget(self):
        """A budget that became too small after the gOA died is corrected
        locally through exploration."""
        platform, servers = build(rack_limit=3000.0)
        soa = platform.soas["s0"]
        vm = VirtualMachine(8, utilization=1.0)
        servers[0].place_vm(vm)
        platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        local = platform.attach_vm("svc", vm)
        # Install a stale, far-too-small assignment by hand.
        import numpy as np
        from repro.core.budgets import BudgetAssignment
        soa.set_budget_assignment(BudgetAssignment(
            slot_s=300.0,
            budgets={"s0": np.array([120.0]), "s1": np.array([1440.0]),
                     "s2": np.array([1440.0])}))
        decision = local.start(0.0)
        assert not decision.granted  # the stale budget rejects
        # Exploration raises the local overlay (no warnings: rack is cold)
        # until the request can be granted.
        granted_at = None
        for i in range(1, 40):
            now = i * 10.0
            soa.control_tick(now, dt=10.0)
            platform.rack_managers["r0"].sample(now)
            if not soa.is_overclocking(vm.vm_id):
                local.start(now)
            if soa.is_overclocking(vm.vm_id):
                granted_at = now
                break
        assert granted_at is not None


class TestWarningChannelLoss:
    def test_lost_warnings_degrade_to_cap_recovery(self):
        """If warnings never arrive (channel down), the explorer is still
        reined in by capping events — the NoWarning degradation mode."""
        platform, servers = build(rack_limit=700.0)
        # Disconnect the warning channel.
        manager = platform.rack_managers["r0"]
        manager._warning_subscribers.clear()
        for server in servers:
            vm = VirtualMachine(16, utilization=1.0)
            server.place_vm(vm)
            name = f"svc-{server.server_id}"
            service = platform.register_service(
                name, metrics_policy=MetricsTriggerPolicy(consecutive=1))
            platform.attach_vm(name, vm)
            service.observe(0.0, 9.5, 10.0)
        for i in range(1, 30):
            platform.tick(i * 10.0, dt=10.0)
        # Caps happened, and each one reset the explorers.
        assert platform.total_cap_events() >= 1
        for soa in platform.soas.values():
            assert soa.explorer.caps_seen >= 0
        rack = platform.datacenter.racks["r0"]
        assert rack.power_watts() <= rack.power_limit_watts + 1e-6


class TestVmChurn:
    def test_vm_removed_mid_grant(self):
        """Deleting a VM while it holds a grant must not wedge the sOA."""
        platform, servers = build()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        local = platform.attach_vm("svc", vm)
        local.start(0.0)
        platform.tick(0.0, dt=10.0)
        servers[0].remove_vm(vm)
        platform.tick(10.0, dt=10.0)  # must not raise
        soa = platform.soas["s0"]
        assert soa.active_grants == 0

    def test_stop_for_unknown_vm_is_noop(self):
        platform, _ = build()
        platform.soas["s0"].stop_overclock(424242, now=0.0)
