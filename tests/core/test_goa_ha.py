"""gOA high availability: heartbeat leases, standby failover, epoch
fencing across split-brain windows, and checkpoint-seeded promotion."""

import numpy as np
import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine
from repro.core.budgets import BudgetAssignment
from repro.core.config import SmartOClockConfig
from repro.core.goa_ha import PRIMARY, STANDBY, GoaSupervisor
from repro.core.messaging import (
    GOA_HEARTBEAT,
    Envelope,
    MessageChannel,
    MessageFate,
)
from repro.core.soa import ServerOverclockingAgent
from repro.recovery.checkpoint import DurableStore

TICK = 10.0
HEARTBEAT = 30.0
LEASE = 90.0


def build(n_servers=2, rack_limit=3000.0, fate_hook=None, store=None,
          down_hook=None):
    config = SmartOClockConfig(enable_goa_ha=True,
                               goa_heartbeat_interval_s=HEARTBEAT,
                               goa_lease_s=LEASE)
    rack = Rack("r0", rack_limit)
    channel = MessageChannel(fate_hook)
    soas = []
    for i in range(n_servers):
        server = Server(f"s{i}", DEFAULT_POWER_MODEL)
        rack.add_server(server)
        vm = VirtualMachine(8, utilization=0.8)
        server.place_vm(vm)
        soas.append(ServerOverclockingAgent(server, config))
    store = store if store is not None else DurableStore()
    supervisor = GoaSupervisor(rack, config, soas, channel, store,
                               down_hook=down_hook)
    return supervisor, soas, channel, store


def run_ticks(supervisor, start, end, tick=TICK):
    """Drive tick() over [start, end); pumps the channel like the
    platform would."""
    now = start
    while now < end:
        supervisor.channel.pump(now)
        supervisor.tick(now)
        now += tick


def drop_heartbeats(envelope):
    if envelope.kind == GOA_HEARTBEAT:
        return MessageFate(dropped=True)
    return MessageFate()


def down_after(index, at_s):
    """Replica ``index`` is dead from ``at_s`` on."""
    def hook(i, now):
        return i == index and now >= at_s
    return hook


class TestHealthyOperation:
    def test_heartbeats_keep_standby_on_lease(self):
        supervisor, _, _, _ = build()
        run_ticks(supervisor, 0.0, 600.0)
        assert supervisor.counters.failovers == 0
        assert [r.role for r in supervisor.replicas] == [PRIMARY, STANDBY]
        assert supervisor.counters.heartbeats_sent > 0
        assert (supervisor.counters.heartbeats_received
                == supervisor.counters.heartbeats_sent)

    def test_update_pushes_monotone_epochs(self):
        supervisor, soas, _, _ = build()
        first = supervisor.update(0.0)
        second = supervisor.update(150.0)
        assert first is not None and second is not None
        assert second.epoch == first.epoch + 1
        for soa in soas:
            assert soa._assignment.epoch == second.epoch

    def test_active_goa_is_the_primary(self):
        supervisor, _, _, _ = build()
        assert supervisor.active_goa is supervisor.replicas[0].goa
        assert supervisor.primary_indices == [0]


class TestFailover:
    def test_standby_promotes_within_one_lease_window(self):
        supervisor, soas, _, _ = build(down_hook=down_after(0, 300.0))
        supervisor.update(150.0)  # primary pushes epoch 1 before dying
        promoted_at = None
        now = 0.0
        while now < 600.0:
            supervisor.channel.pump(now)
            supervisor.tick(now)
            if promoted_at is None \
                    and supervisor.replicas[1].role == PRIMARY:
                promoted_at = now
            now += TICK
        assert promoted_at is not None
        # Last heartbeat lands just before the outage; the lease lapses
        # at most one lease window later.
        assert promoted_at <= 300.0 + LEASE + TICK
        assert supervisor.counters.failovers == 1
        assert supervisor.active_goa is supervisor.replicas[1].goa
        # Promotion re-pulled profiles and pushed at a strictly higher
        # epoch than anything the old primary issued.
        for soa in soas:
            assert soa._assignment.epoch == 2
            assert soa.stale_pushes_rejected == 0

    def test_promotion_seeds_epoch_past_stored_checkpoint(self):
        supervisor, soas, _, store = build(down_hook=down_after(0, 500.0))
        for now in (0.0, 150.0, 300.0):
            supervisor.update(now)
        assert supervisor.replicas[0].goa.epoch == 3
        load = store.load_goa("r0")
        assert load.checkpoint is not None
        assert load.checkpoint.payload["epoch"] == 3
        run_ticks(supervisor, 500.0, 700.0)
        # Seeded from the durable checkpoint (the standby heard no
        # heartbeat after the last push), then bumped by its own push.
        assert supervisor.replicas[1].goa.epoch == 4
        for soa in soas:
            assert soa._assignment.epoch == 4


class TestSplitBrain:
    def test_partition_window_is_fenced(self):
        """Heartbeats partitioned, primary alive: the standby promotes,
        both replicas believe primary, and the epoch fence keeps the
        deposed primary's pushes out until it steps down."""
        supervisor, soas, _, _ = build(fate_hook=drop_heartbeats)
        old = supervisor.update(0.0)
        assert old is not None and old.epoch == 1
        # The standby's bootstrap lease (one full window) lapses unheard.
        run_ticks(supervisor, 0.0, 100.0)
        assert supervisor.counters.failovers == 1
        assert supervisor.primary_indices == [0, 1]  # split brain
        for soa in soas:
            assert soa._assignment.epoch == 2
        # A delayed in-flight push from the old primary arrives late:
        # fenced, counted, installed assignment untouched.
        installed = soas[0]._assignment
        soas[0].receive_budget_push(old, now=110.0)
        assert soas[0].stale_pushes_rejected == 1
        assert soas[0]._assignment is installed
        # The old primary's next cycle finds the standby's higher epoch
        # in the durable checkpoint and steps down instead of pushing.
        supervisor.update(150.0)
        assert supervisor.counters.stepdowns == 1
        assert supervisor.primary_indices == [1]
        for soa in soas:
            assert soa._assignment.epoch == 3

    def test_healed_partition_deposes_old_primary_by_heartbeat(self):
        hook_on = [True]

        def flaky(envelope):
            if hook_on[0]:
                return drop_heartbeats(envelope)
            return MessageFate()

        supervisor, _, _, _ = build(fate_hook=flaky)
        supervisor.update(0.0)
        run_ticks(supervisor, 0.0, 100.0)   # standby promotes at epoch 2
        assert supervisor.primary_indices == [0, 1]
        hook_on[0] = False                  # partition heals
        run_ticks(supervisor, 100.0, 200.0)
        # The old primary (epoch 1) hears the new primary's epoch-2
        # heartbeat and demotes itself; the winner stays.
        assert supervisor.primary_indices == [1]
        assert supervisor.counters.stepdowns == 1
        assert [r.role for r in supervisor.replicas] == [STANDBY, PRIMARY]


class TestGoaCheckpointCorruption:
    def test_corrupted_checkpoint_degrades_epoch_floor_only(self):
        store = DurableStore(
            corruption_hook=lambda key, taken_at: key.startswith("goa:"))
        supervisor, soas, _, _ = build(store=store,
                                       down_hook=down_after(0, 300.0))
        supervisor.update(150.0)  # epoch 1; its checkpoint rots
        assert store.checkpoints_corrupted == 1
        assert supervisor._stored_epoch() == 0
        assert store.corruption_detected == 1
        # Heartbeats carried epoch 1, so the promoted standby still
        # fences past the dead primary without the checkpoint.
        run_ticks(supervisor, 0.0, 500.0)
        assert supervisor.counters.failovers == 1
        assert supervisor.replicas[1].goa.epoch == 2
        for soa in soas:
            assert soa._assignment.epoch == 2
            assert soa.stale_pushes_rejected == 0

    def test_outage_without_pushes_misses_cycles(self):
        supervisor, _, _, _ = build(
            down_hook=lambda i, now: True)  # both replicas down
        assert supervisor.update(100.0) is None
        assert supervisor.counters.cycles_missed == 1


class TestSoaEpochFence:
    def assignment(self, soa, epoch, watts=500.0):
        return BudgetAssignment(
            slot_s=3600.0,
            budgets={soa.server.server_id: np.full(4, watts)},
            epoch=epoch)

    def build_soa(self):
        config = SmartOClockConfig()
        server = Server("s0", DEFAULT_POWER_MODEL)
        Rack("r0", 2000.0).add_server(server)
        return ServerOverclockingAgent(server, config)

    def test_rejects_lower_accepts_equal_and_higher(self):
        soa = self.build_soa()
        soa.receive_budget_push(self.assignment(soa, 3), now=0.0)
        assert soa._assignment.epoch == 3

        stale = self.assignment(soa, 2, watts=999.0)
        soa.receive_budget_push(stale, now=10.0)
        assert soa.stale_pushes_rejected == 1
        assert soa._assignment.epoch == 3

        redelivery = self.assignment(soa, 3)
        soa.receive_budget_push(redelivery, now=20.0)
        assert soa._assignment is redelivery  # equal epoch: installable
        assert soa.stale_pushes_rejected == 1

        soa.receive_budget_push(self.assignment(soa, 4), now=30.0)
        assert soa._assignment.epoch == 4

    def test_fence_survives_checkpoint_roundtrip(self):
        soa = self.build_soa()
        soa.receive_budget_push(self.assignment(soa, 5), now=0.0)
        cp = soa.build_checkpoint(50.0)
        soa.crash(60.0)
        soa.restart(100.0, cp)
        assert soa._assignment.epoch == 5
        soa.receive_budget_push(self.assignment(soa, 4), now=110.0)
        assert soa.stale_pushes_rejected == 1
        assert soa._assignment.epoch == 5

    def test_negative_epoch_rejected_at_construction(self):
        with pytest.raises(ValueError, match="epoch"):
            BudgetAssignment(slot_s=3600.0,
                             budgets={"s0": np.full(4, 1.0)}, epoch=-1)
