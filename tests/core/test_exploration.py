"""Tests for the explore/exploit state machine (§IV-D)."""

import pytest

from repro.core.exploration import ExplorationController, ExplorationPhase


def make_controller(**kwargs):
    defaults = dict(step_watts=20.0, confirm_s=30.0,
                    backoff_initial_s=60.0, backoff_factor=2.0,
                    backoff_max_s=3600.0, exploit_duration_s=600.0)
    defaults.update(kwargs)
    return ExplorationController(**defaults)


class TestExploration:
    def test_idle_until_constrained(self):
        ctrl = make_controller()
        assert ctrl.tick(0.0, constrained=False, all_at_target=True) == 0.0
        assert ctrl.phase is ExplorationPhase.IDLE

    def test_constrained_starts_exploring_one_step(self):
        ctrl = make_controller()
        extra = ctrl.tick(0.0, constrained=True, all_at_target=False)
        assert extra == 20.0
        assert ctrl.phase is ExplorationPhase.EXPLORING
        assert ctrl.explorations_started == 1

    def test_quiet_confirmation_window_raises_again(self):
        """§IV-D: no warning within 30 s → increase the budget further."""
        ctrl = make_controller()
        ctrl.tick(0.0, True, False)
        ctrl.tick(10.0, True, False)       # inside window: no change
        assert ctrl.extra_watts == 20.0
        ctrl.tick(31.0, True, False)       # window expired: +step
        assert ctrl.extra_watts == 40.0

    def test_all_at_target_enters_exploitation(self):
        ctrl = make_controller()
        ctrl.tick(0.0, True, False)
        ctrl.tick(5.0, False, True)
        assert ctrl.phase is ExplorationPhase.EXPLOITING
        assert ctrl.extra_watts == 20.0  # keeps the discovered budget

    def test_exploitation_expires_back_to_idle(self):
        ctrl = make_controller(exploit_duration_s=100.0)
        ctrl.tick(0.0, True, False)
        ctrl.tick(5.0, False, True)     # exploit until 105
        ctrl.tick(106.0, False, True)
        assert ctrl.phase is ExplorationPhase.IDLE
        assert ctrl.extra_watts == 0.0  # released when unconstrained

    def test_exploitation_expiry_keeps_budget_if_still_constrained(self):
        ctrl = make_controller(exploit_duration_s=100.0)
        ctrl.tick(0.0, True, False)
        ctrl.tick(5.0, False, True)
        ctrl.tick(106.0, True, False)
        assert ctrl.extra_watts == 20.0  # kept: still needed


class TestWarnings:
    def test_warning_while_exploring_steps_back(self):
        ctrl = make_controller()
        ctrl.tick(0.0, True, False)
        ctrl.tick(31.0, True, False)  # extra = 40
        ctrl.on_warning(32.0)
        assert ctrl.extra_watts == 20.0
        assert ctrl.phase is ExplorationPhase.EXPLOITING
        assert ctrl.warnings_heeded == 1

    def test_warning_ignored_when_not_exploring(self):
        """§IV-D: 'An sOA ignores the message if it is not exploring.'"""
        ctrl = make_controller()
        ctrl.on_warning(0.0)
        assert ctrl.warnings_heeded == 0
        # Also ignored while exploiting:
        ctrl.tick(0.0, True, False)
        ctrl.tick(5.0, False, True)
        extra = ctrl.extra_watts
        ctrl.on_warning(6.0)
        assert ctrl.extra_watts == extra
        assert ctrl.warnings_heeded == 0

    def test_warning_backoff_is_exponential(self):
        ctrl = make_controller(backoff_initial_s=60.0, backoff_factor=2.0,
                               exploit_duration_s=1.0)
        # First exploration, warning at t=1: back off 60 s.
        ctrl.tick(0.0, True, False)
        ctrl.on_warning(1.0)
        # Exploit expires at t=2; constrained but within backoff → idle.
        ctrl.tick(3.0, True, False)
        assert ctrl.phase is ExplorationPhase.IDLE
        # After the backoff expires, exploration restarts.
        ctrl.tick(62.0, True, False)
        assert ctrl.phase is ExplorationPhase.EXPLORING
        # Second warning doubles the backoff to 120 s.
        ctrl.on_warning(63.0)
        ctrl.tick(65.0, True, False)
        ctrl.tick(120.0, True, False)
        assert ctrl.phase is ExplorationPhase.IDLE   # 63+120 > 120
        ctrl.tick(184.0, True, False)
        assert ctrl.phase is ExplorationPhase.EXPLORING

    def test_successful_exploration_resets_backoff(self):
        ctrl = make_controller(backoff_initial_s=60.0,
                               exploit_duration_s=1.0)
        ctrl.tick(0.0, True, False)
        ctrl.on_warning(1.0)        # backoff now 120 for next time
        ctrl.tick(62.0, True, False)  # re-explore
        ctrl.tick(63.0, False, True)  # success → backoff resets to 60
        assert ctrl._backoff_current == 60.0


class TestCapping:
    def test_cap_reverts_to_assigned_budget(self):
        """§IV-D: 'On a power capping event, the sOA goes back to its
        initial power budget.'"""
        ctrl = make_controller()
        ctrl.tick(0.0, True, False)
        ctrl.tick(31.0, True, False)
        ctrl.on_cap(32.0)
        assert ctrl.extra_watts == 0.0
        assert ctrl.phase is ExplorationPhase.IDLE
        assert ctrl.caps_seen == 1

    def test_cap_triggers_backoff(self):
        ctrl = make_controller(backoff_initial_s=60.0)
        ctrl.tick(0.0, True, False)
        ctrl.on_cap(1.0)
        ctrl.tick(10.0, True, False)
        assert ctrl.phase is ExplorationPhase.IDLE
        ctrl.tick(62.0, True, False)
        assert ctrl.phase is ExplorationPhase.EXPLORING

    def test_backoff_capped_at_max(self):
        ctrl = make_controller(backoff_initial_s=1000.0,
                               backoff_factor=10.0, backoff_max_s=2000.0)
        ctrl.tick(0.0, True, False)
        ctrl.on_cap(1.0)
        assert ctrl._backoff_current == 2000.0


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_controller(step_watts=0.0)
        with pytest.raises(ValueError):
            make_controller(confirm_s=0.0)
        with pytest.raises(ValueError):
            make_controller(backoff_factor=0.5)
        with pytest.raises(ValueError):
            make_controller(exploit_duration_s=0.0)
