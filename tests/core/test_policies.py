"""Tests for the trace-driven policy kernels (§V-B)."""

import numpy as np
import pytest

from repro.core.policies import (
    POLICY_NAMES,
    CentralOracle,
    NaiveOClock,
    NoFeedback,
    SmartOClockPolicy,
    TickContext,
    make_policy,
)

WEEK = 7 * 86400.0


def make_ctx(n=4, *, baseline=250.0, limit=1400.0, demand=8, util=0.6,
             index=2016, time=WEEK):
    power = np.full(n, baseline)
    return TickContext(
        index=index, time=time, limit_watts=limit,
        warning_watts=0.95 * limit,
        observed_power=power, observed_util=np.full(n, util),
        oracle_power=power.copy(), oracle_util=np.full(n, util),
        demand_cores=np.full(n, demand, dtype=np.int64),
        delta_full_watts=9.5)


def history(n=4, baseline=250.0, demand=8):
    times = np.arange(0.0, WEEK, 300.0)
    power = np.full((n, len(times)), baseline)
    demand_arr = np.zeros((n, len(times)), dtype=np.int64)
    demand_arr[:, ::12] = demand  # demand every hour
    return times, power, demand_arr


class TestFactory:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name, 4).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("Bogus", 4)

    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            make_policy("Central", 0)

    def test_osub_risk_variants(self):
        from repro.core.policies import SmartOClockOSub

        default = make_policy("SmartOClock+OSub", 4)
        assert isinstance(default, SmartOClockOSub)
        assert default.risk_level == "conservative"
        assert default.name == "SmartOClock+OSub"
        variant = make_policy("SmartOClock+OSub:aggressive", 4)
        assert variant.risk_level == "aggressive"
        # Instance name carries the variant so result rows stay keyed by
        # the requested label across worker pools.
        assert variant.name == "SmartOClock+OSub:aggressive"

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError, match="reckless"):
            make_policy("SmartOClock+OSub:reckless", 4)
        with pytest.raises(KeyError, match="variant"):
            make_policy("SmartOClock:aggressive", 4)


class TestNaive:
    def test_grants_everything(self):
        policy = NaiveOClock(4)
        ctx = make_ctx()
        assert np.array_equal(policy.decide(ctx), ctx.demand_cores)

    def test_fair_capping_mode(self):
        assert NaiveOClock(4).capping_mode == "fair"


class TestCentral:
    def test_grants_up_to_headroom(self):
        policy = CentralOracle(4)
        # headroom = 1400 - 1000 = 400; expected delta 9.5*0.6 = 5.7/core
        ctx = make_ctx(baseline=250.0, limit=1400.0, demand=20)
        granted = policy.decide(ctx)
        extra = granted.sum() * 9.5 * 0.6
        assert extra <= 400.0
        assert extra > 400.0 - 4 * 9.5  # packs nearly full

    def test_grants_nothing_when_no_headroom(self):
        policy = CentralOracle(4)
        ctx = make_ctx(baseline=360.0, limit=1400.0)
        assert policy.decide(ctx).sum() == 0

    def test_round_robin_fairness(self):
        policy = CentralOracle(4)
        ctx = make_ctx(baseline=250.0, limit=1250.0, demand=20)
        granted = policy.decide(ctx)
        # Headroom for ~43 cores, spread across the 4 servers.
        assert granted.min() >= granted.max() - 1


class TestNoFeedback:
    def test_respects_budgets_after_begin_week(self):
        policy = NoFeedback(4)
        times, power, demand = history()
        policy.begin_week(times, power, demand, limit_watts=1400.0)
        ctx = make_ctx(demand=50)
        granted = policy.decide(ctx)
        budgets = policy.budget_at(ctx)
        assert budgets is not None
        assert budgets.sum() == pytest.approx(1400.0)
        # Grants must fit under the per-server budget.
        predicted = policy._predicted_power(ctx)
        expected_delta = 9.5 * 0.6
        assert np.all(predicted + granted * expected_delta
                      <= budgets + expected_delta)

    def test_decide_before_begin_week_raises(self):
        policy = NoFeedback(4)
        with pytest.raises(RuntimeError, match="begin_week"):
            policy.decide(make_ctx())

    def test_enforcement_budget_exposed(self):
        policy = NoFeedback(4)
        times, power, demand = history()
        policy.begin_week(times, power, demand, 1400.0)
        ctx = make_ctx()
        assert policy.enforcement_budget_at(ctx) is not None


class TestSmartOClockKernel:
    def test_exploration_raises_effective_budget(self):
        policy = SmartOClockPolicy(4)
        times, power, demand = history(baseline=330.0)
        policy.begin_week(times, power, demand, limit_watts=1400.0)
        # Rack nearly full: budgets tight, demand unmet → extra grows.
        ctx = make_ctx(baseline=330.0, limit=1400.0, demand=30)
        policy.decide(ctx)
        assert policy.extra.sum() > 0

    def test_ramp_respects_warning_band(self):
        policy = SmartOClockPolicy(4)
        times, power, demand = history(baseline=330.0)
        policy.begin_week(times, power, demand, limit_watts=1400.0)
        ctx = make_ctx(baseline=330.0, limit=1400.0, demand=30)
        for i in range(20):
            ctx2 = make_ctx(baseline=330.0, limit=1400.0, demand=30,
                            index=ctx.index + i)
            policy.decide(ctx2)
        # Total overlay never pushes planned power past the warning line.
        assert 4 * 330.0 + policy.extra.sum() <= 0.95 * 1400.0 + 1e-6

    def test_cap_resets_overlay(self):
        policy = SmartOClockPolicy(4)
        times, power, demand = history(baseline=300.0)
        policy.begin_week(times, power, demand, 1400.0)
        ctx = make_ctx(baseline=300.0, demand=30)
        policy.decide(ctx)
        policy.extra[:] = 40.0
        policy.on_cap(ctx)
        assert policy.extra.sum() == 0.0

    def test_warning_ignored_while_exploiting(self):
        policy = SmartOClockPolicy(4, exploit_ticks=10)
        times, power, demand = history(baseline=300.0)
        policy.begin_week(times, power, demand, 1400.0)
        ctx = make_ctx(baseline=300.0, demand=30)
        policy.decide(ctx)
        policy.on_warning(ctx)      # exploring → steps back + exploit
        level = policy.extra.copy()
        policy.on_warning(ctx)      # exploiting → ignored
        assert np.array_equal(policy.extra, level)
