"""gOA profile staleness: stamping, re-pull, and degraded operation.

Regression coverage for the bug where ``recompute_budgets`` silently
reused week-old profiles and ``update(now)`` ignored ``now`` entirely.
"""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.goa import GlobalOverclockingAgent
from repro.core.messaging import MessageChannel, MessageFate, PROFILE_PULL
from repro.core.soa import ServerOverclockingAgent


def build(n_servers=2, rack_limit=3000.0, channel=None):
    config = SmartOClockConfig()
    rack = Rack("r0", rack_limit)
    soas = []
    for i in range(n_servers):
        server = Server(f"s{i}", DEFAULT_POWER_MODEL)
        rack.add_server(server)
        vm = VirtualMachine(8, utilization=0.8)
        server.place_vm(vm)
        soas.append(ServerOverclockingAgent(server, config))
    goa = GlobalOverclockingAgent(rack, config, soas, channel=channel)
    return goa, soas


def drop_pulls_to(server_ids):
    """Channel hook dropping profile pulls addressed to ``server_ids``."""
    def hook(envelope):
        if envelope.kind == PROFILE_PULL and envelope.dst in server_ids:
            return MessageFate(dropped=True)
        return MessageFate()
    return hook


class TestProfileStamping:
    def test_collect_stamps_profiles(self):
        goa, _ = build()
        assert goa.profile_age("s0", 100.0) is None
        assert goa.collect_profiles(50.0) == 2
        assert goa.profile_age("s0", 80.0) == pytest.approx(30.0)
        assert goa.profile_age("s1", 80.0) == pytest.approx(30.0)

    def test_stale_profiles_lists_missing_and_old(self):
        goa, _ = build()
        period = goa.config.budget_update_period_s
        assert goa.stale_profiles(0.0) == ["s0", "s1"]  # never collected
        goa.collect_profiles(0.0)
        assert goa.stale_profiles(period - 1.0) == []
        assert goa.stale_profiles(period) == ["s0", "s1"]

    def test_failed_pull_keeps_old_profile_and_stamp(self):
        channel = MessageChannel(drop_pulls_to({"s1"}))
        goa, _ = build(channel=channel)
        goa.collect_profiles(0.0)  # s1's pull dropped
        assert goa.profile_age("s0", 0.0) == pytest.approx(0.0)
        assert goa.profile_age("s1", 0.0) is None
        # Healthy retry later: s1's stamp reflects the successful pull.
        channel.fate_hook = None
        goa.collect_profiles(100.0)
        assert goa.profile_age("s1", 100.0) == pytest.approx(0.0)


class TestRecomputeStaleness:
    def test_recompute_repulls_stale_profiles(self):
        goa, _ = build()
        period = goa.config.budget_update_period_s
        goa.collect_profiles(0.0)
        goa.recompute_budgets(2 * period)  # profiles a period old
        assert goa.stale_profiles(2 * period) == []  # re-pulled, restamped

    def test_recompute_without_any_profiles_keeps_assignment(self):
        channel = MessageChannel(drop_pulls_to({"s0", "s1"}))
        goa, _ = build(channel=channel)
        assert goa.recompute_budgets(0.0) is None
        assert goa.budget_updates == 0

    def test_never_profiled_server_blocks_budgeting(self):
        """While any server has *never* delivered a profile the gOA
        cannot split the rack limit; it heals once a pull lands."""
        channel = MessageChannel(drop_pulls_to({"s1"}))
        goa, _ = build(channel=channel)
        assert goa.recompute_budgets(0.0) is None
        assert goa.budget_updates == 0
        channel.fate_hook = None
        period = goa.config.budget_update_period_s
        assert goa.recompute_budgets(period) is not None
        assert goa.budget_updates == 1

    def test_stale_but_present_profiles_still_budget(self):
        """If the re-pull fails but an old profile exists, the gOA
        degrades to budgeting from stale data rather than stalling."""
        channel = MessageChannel()
        goa, _ = build(channel=channel)
        goa.collect_profiles(0.0)
        channel.fate_hook = drop_pulls_to({"s0", "s1"})
        period = goa.config.budget_update_period_s
        assignment = goa.recompute_budgets(2 * period)
        assert assignment is not None
        assert goa.budget_updates == 1


class TestUpdateNow:
    def test_update_threads_now_through(self):
        goa, soas = build()
        goa.update(123.0)
        assert goa.last_update_at == 123.0
        for soa in soas:
            assert soa.budget_age(123.0) == pytest.approx(0.0)

    def test_push_stamps_soa_assignment_time(self):
        goa, soas = build()
        goa.update(500.0)
        assert soas[0].budget_age(600.0) == pytest.approx(100.0)

    def test_dropped_push_leaves_soa_on_old_assignment(self):
        channel = MessageChannel()
        goa, soas = build(channel=channel)
        goa.update(0.0)
        old = soas[0]._assignment
        assert old is not None

        def drop_push_to_s0(envelope):
            if envelope.dst == "s0" and envelope.kind == "budget_push":
                return MessageFate(dropped=True)
            return MessageFate()

        channel.fate_hook = drop_push_to_s0
        period = goa.config.budget_update_period_s
        goa.update(period)
        assert soas[0]._assignment is old          # push lost
        assert soas[1]._assignment is goa.assignment  # push landed
        assert soas[0].budget_age(period) == pytest.approx(period)
