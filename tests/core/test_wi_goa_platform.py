"""Tests for Workload Intelligence agents, the gOA, and the platform."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import ExhaustionKind, ExhaustionSignal
from repro.core.workload_intelligence import (
    GlobalWIAgent,
    LocalWIAgent,
    MetricsTriggerPolicy,
    OverclockSchedule,
)

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz
DAY = 86400.0


def build_platform(rack_limit=8000.0, n_servers=2,
                   config=None) -> tuple[SmartOClockPlatform, list]:
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    return SmartOClockPlatform(dc, config), servers


class TestMetricsTriggerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsTriggerPolicy(start_fraction=0.4, stop_fraction=0.5)
        with pytest.raises(ValueError):
            MetricsTriggerPolicy(consecutive=0)


class TestOverclockSchedule:
    def test_active_within_window(self):
        schedule = OverclockSchedule([((0, 1, 2, 3, 4), 10.0, 12.0)])
        monday_11am = 11 * 3600.0
        assert schedule.active(monday_11am)
        assert not schedule.active(9 * 3600.0)

    def test_weekend_excluded(self):
        schedule = OverclockSchedule([((0, 1, 2, 3, 4), 10.0, 12.0)])
        saturday_11am = 5 * DAY + 11 * 3600.0
        assert not schedule.active(saturday_11am)

    def test_remaining_duration(self):
        schedule = OverclockSchedule([((0,), 10.0, 12.0)])
        assert schedule.next_window_duration_s(11 * 3600.0) == \
            pytest.approx(3600.0)
        assert schedule.next_window_duration_s(13 * 3600.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OverclockSchedule([((), 10.0, 12.0)])
        with pytest.raises(ValueError):
            OverclockSchedule([((0,), 12.0, 10.0)])
        with pytest.raises(ValueError):
            OverclockSchedule([((9,), 10.0, 12.0)])


class TestGlobalWIAgent:
    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            GlobalWIAgent("svc")

    def test_metrics_hysteresis(self):
        agent = GlobalWIAgent("svc", metrics_policy=MetricsTriggerPolicy(
            start_fraction=0.7, stop_fraction=0.3, consecutive=2))
        slo = 10.0
        assert not agent.observe(0.0, 8.0, slo)   # first high tick
        assert agent.observe(1.0, 8.0, slo)       # second: triggers
        assert agent.observe(2.0, 5.0, slo)       # in band: stays on
        agent.observe(3.0, 2.0, slo)
        assert not agent.observe(4.0, 2.0, slo)   # two lows: off

    def test_schedule_based_wants_overclock(self):
        agent = GlobalWIAgent("svc", schedule=OverclockSchedule(
            [((0,), 0.0, 24.0)]))
        assert agent.wants_overclock(3600.0)
        assert not agent.wants_overclock(DAY + 3600.0)

    def test_rejections_trigger_scale_out(self):
        calls = []
        agent = GlobalWIAgent(
            "svc", metrics_policy=MetricsTriggerPolicy(),
            scale_out_handler=lambda now, n: calls.append((now, n)),
            rejections_per_scale_out=2)
        agent.on_rejection(1.0)
        assert calls == []
        agent.on_rejection(2.0)
        assert calls == [(2.0, 1)]

    def test_exhaustion_triggers_immediate_scale_out(self):
        calls = []
        agent = GlobalWIAgent(
            "svc", metrics_policy=MetricsTriggerPolicy(),
            scale_out_handler=lambda now, n: calls.append(now))
        agent.on_exhaustion(ExhaustionSignal(
            "s0", ExhaustionKind.POWER, time=5.0,
            time_to_exhaustion_s=600.0))
        assert calls == [5.0]
        assert agent.exhaustion_signals == 1


class TestLocalWIAgentIntegration:
    def test_start_stop_via_soa(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy())
        local = platform.attach_vm("svc", vm, target_freq_ghz=MAX)
        decision = local.start(0.0)
        assert decision.granted
        assert local.overclocking
        local.stop(1.0)
        assert not local.overclocking

    def test_grant_and_rejection_counters(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        platform.register_service("svc",
                                  metrics_policy=MetricsTriggerPolicy())
        local = platform.attach_vm("svc", vm)
        local.start(0.0)
        local.start(1.0)  # already overclocked → rejected
        assert local.grants == 1
        assert local.rejections == 1


class TestPlatform:
    def test_observe_drives_overclocking(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.9)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        service.observe(0.0, p99_ms=9.5, slo_ms=10.0)
        platform.tick(0.0, dt=10.0)
        assert vm.freq_ghz > TURBO

    def test_observe_low_latency_stops(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.9)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        service.observe(0.0, 9.5, 10.0)
        platform.tick(0.0, dt=10.0)
        service.observe(10.0, 1.0, 10.0)
        platform.tick(10.0, dt=10.0)
        assert vm.freq_ghz == pytest.approx(TURBO)

    def test_duplicate_service_rejected(self):
        platform, _ = build_platform()
        platform.register_service("svc",
                                  metrics_policy=MetricsTriggerPolicy())
        with pytest.raises(ValueError, match="already"):
            platform.register_service("svc",
                                      metrics_policy=MetricsTriggerPolicy())

    def test_attach_unplaced_vm_rejected(self):
        platform, _ = build_platform()
        platform.register_service("svc",
                                  metrics_policy=MetricsTriggerPolicy())
        with pytest.raises(ValueError, match="placed"):
            platform.attach_vm("svc", VirtualMachine(4))

    def test_attach_to_unknown_service(self):
        platform, servers = build_platform()
        vm = VirtualMachine(4)
        servers[0].place_vm(vm)
        with pytest.raises(KeyError):
            platform.attach_vm("nope", vm)

    def test_grant_statistics(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        platform.register_service("svc",
                                  metrics_policy=MetricsTriggerPolicy())
        local = platform.attach_vm("svc", vm)
        local.start(0.0)
        stats = platform.grant_statistics()
        assert stats["received"] == 1
        assert stats["granted"] == 1

    def test_capping_wired_to_soas(self):
        """A rack cap event must reach every sOA's explorer."""
        platform, servers = build_platform(rack_limit=340.0)
        vm = VirtualMachine(16, utilization=1.0)
        servers[0].place_vm(vm)
        platform.tick(0.0, dt=10.0)
        assert platform.total_cap_events() >= 1
        soa = platform.soas["s0"]
        assert soa.explorer.caps_seen >= 1

    def test_goa_budget_update_cycle(self):
        platform, servers = build_platform()
        vm = VirtualMachine(8, utilization=0.8)
        servers[0].place_vm(vm)
        platform.register_service("svc",
                                  metrics_policy=MetricsTriggerPolicy())
        platform.attach_vm("svc", vm)
        for i in range(4):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1200.0)
        goa = platform.goas["r0"]
        assert goa.budget_updates == 1
        assignment = goa.assignment
        assert assignment is not None
        total = assignment.total_at(0.0)
        assert total == pytest.approx(8000.0)

    def test_budgets_pushed_to_soas(self):
        platform, servers = build_platform()
        for i in range(4):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1200.0)
        soa = platform.soas["s0"]
        assert soa._assignment is not None


class TestGoaValidation:
    def test_goa_requires_soas(self):
        from repro.core.goa import GlobalOverclockingAgent
        rack = Rack("r", 1000.0)
        with pytest.raises(ValueError):
            GlobalOverclockingAgent(rack, SmartOClockConfig(), [])

    def test_goa_rejects_foreign_soa(self):
        from repro.core.goa import GlobalOverclockingAgent
        rack1, rack2 = Rack("r1", 1000.0), Rack("r2", 1000.0)
        server = Server("s", DEFAULT_POWER_MODEL)
        rack2.add_server(server)
        soa = ServerOverclockingAgent(server, SmartOClockConfig())
        with pytest.raises(ValueError, match="not in rack"):
            GlobalOverclockingAgent(rack1, SmartOClockConfig(), [soa])
