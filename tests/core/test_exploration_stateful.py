"""Stateful property test for the explore/exploit state machine.

Drives :class:`ExplorationController` through arbitrary interleavings of
ticks, warnings and capping events, checking the §IV-D safety invariants
after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.exploration import ExplorationController, ExplorationPhase


class ExplorationMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.ctrl = ExplorationController(
            step_watts=20.0, confirm_s=30.0, backoff_initial_s=60.0,
            backoff_factor=2.0, backoff_max_s=3600.0,
            exploit_duration_s=300.0)
        self.now = 0.0
        self.max_extra_seen = 0.0

    @rule(dt=st.floats(1.0, 120.0), constrained=st.booleans(),
          at_target=st.booleans())
    def tick(self, dt, constrained, at_target):
        self.now += dt
        # "all at target" and "constrained" are mutually exclusive inputs
        # in practice; hypothesis may propose both, pick a coherent pair.
        if constrained:
            at_target = False
        self.ctrl.tick(self.now, constrained, at_target)
        self.max_extra_seen = max(self.max_extra_seen,
                                  self.ctrl.extra_watts)

    @rule()
    def warning(self):
        self.ctrl.on_warning(self.now)

    @rule()
    def cap(self):
        self.ctrl.on_cap(self.now)

    @invariant()
    def extra_never_negative(self):
        assert self.ctrl.extra_watts >= 0.0

    @invariant()
    def cap_always_resets(self):
        """After a cap, before any further tick, the overlay is zero —
        checked by observing the phase/extra pairing."""
        if self.ctrl.phase is ExplorationPhase.IDLE:
            # IDLE with a nonzero overlay only happens right after
            # exploit-expiry-while-constrained, which keeps the budget.
            assert self.ctrl.extra_watts >= 0.0

    @invariant()
    def extra_is_step_quantized(self):
        """The overlay is always a whole number of 20 W steps."""
        remainder = self.ctrl.extra_watts % 20.0
        assert remainder < 1e-6 or 20.0 - remainder < 1e-6

    @invariant()
    def counters_consistent(self):
        assert self.ctrl.explorations_started >= 0
        assert self.ctrl.warnings_heeded <= self.ctrl.explorations_started \
            + self.ctrl.warnings_heeded  # trivially sane
        assert self.ctrl.caps_seen >= 0


ExplorationMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestExplorationStateMachine = ExplorationMachine.TestCase
