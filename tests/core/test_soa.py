"""Tests for the Server Overclocking Agent."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.soa import ServerOverclockingAgent
from repro.core.types import (
    ExhaustionKind,
    OverclockRequest,
    RejectionReason,
    RequestKind,
)

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz
WEEK = 7 * 86400.0


def build(rack_limit=2000.0, config=None, vm_cores=8, vm_util=0.8,
          n_servers=1):
    rack = Rack("r", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    server = servers[0]
    vm = VirtualMachine(vm_cores, utilization=vm_util)
    server.place_vm(vm)
    soa = ServerOverclockingAgent(server, config or SmartOClockConfig())
    return soa, server, vm


def request_for(vm, kind=RequestKind.METRICS, duration=None, now=0.0):
    return OverclockRequest(vm_id=vm.vm_id, kind=kind,
                            target_freq_ghz=MAX, n_cores=vm.n_cores,
                            time=now, duration_s=duration)


class TestAdmission:
    def test_grant_under_generous_budget(self):
        soa, server, vm = build(rack_limit=5000.0)
        decision = soa.handle_request(request_for(vm), now=0.0)
        assert decision.granted
        assert soa.is_overclocking(vm.vm_id)
        assert decision.granted_until is not None

    def test_reject_unknown_vm(self):
        soa, server, vm = build()
        stranger = VirtualMachine(4)
        decision = soa.handle_request(request_for(stranger), now=0.0)
        assert not decision.granted
        assert decision.reason is RejectionReason.UNKNOWN_VM

    def test_reject_double_grant(self):
        soa, _, vm = build(rack_limit=5000.0)
        soa.handle_request(request_for(vm), now=0.0)
        decision = soa.handle_request(request_for(vm), now=1.0)
        assert decision.reason is RejectionReason.ALREADY_OVERCLOCKED

    def test_reject_on_power_budget(self):
        # Fair share of a tight rack is below the server's current draw.
        soa, server, vm = build(rack_limit=185.0, vm_util=1.0)
        decision = soa.handle_request(request_for(vm), now=0.0)
        assert not decision.granted
        assert decision.reason is RejectionReason.POWER_BUDGET
        assert soa.requests_rejected_power == 1

    def test_reject_on_lifetime_budget(self):
        config = SmartOClockConfig(oc_budget_fraction=0.0)
        soa, _, vm = build(rack_limit=5000.0, config=config)
        decision = soa.handle_request(request_for(vm), now=0.0)
        assert not decision.granted
        assert decision.reason is RejectionReason.LIFETIME_BUDGET

    def test_naive_config_grants_everything(self):
        config = SmartOClockConfig(oc_budget_fraction=0.0).as_naive()
        soa, _, vm = build(rack_limit=185.0, config=config)
        assert soa.handle_request(request_for(vm), now=0.0).granted

    def test_scheduled_request_reserves_budget(self):
        soa, _, vm = build(rack_limit=5000.0)
        duration = 3600.0
        decision = soa.handle_request(
            request_for(vm, RequestKind.SCHEDULED, duration), now=0.0)
        assert decision.granted
        assert decision.granted_until == pytest.approx(duration)
        core = soa.server.vm_cores(vm)[0]
        assert soa.core_budgets[core.index].reserved_seconds == \
            pytest.approx(duration)

    def test_scheduled_request_rejected_when_window_too_long(self):
        soa, _, vm = build(rack_limit=5000.0)
        too_long = 0.2 * WEEK  # exceeds the 10% weekly budget
        decision = soa.handle_request(
            request_for(vm, RequestKind.SCHEDULED, too_long), now=0.0)
        assert decision.reason is RejectionReason.LIFETIME_BUDGET


class TestControlLoop:
    def test_granted_vm_ramps_to_target(self):
        soa, server, vm = build(rack_limit=5000.0)
        soa.handle_request(request_for(vm), now=0.0)
        soa.control_tick(10.0, dt=10.0)
        assert vm.freq_ghz == pytest.approx(MAX)

    def test_lifetime_budget_consumed_while_overclocked(self):
        soa, server, vm = build(rack_limit=5000.0)
        soa.handle_request(request_for(vm), now=0.0)
        soa.control_tick(10.0, dt=10.0)   # ramps up
        core = server.vm_cores(vm)[0]
        before = soa.core_budgets[core.index].available_seconds(20.0)
        soa.control_tick(20.0, dt=10.0)   # now overclocked: consumes
        after = soa.core_budgets[core.index].available_seconds(30.0)
        assert after < before

    def test_grant_expires(self):
        soa, server, vm = build(rack_limit=5000.0)
        revoked = []
        soa.on_grant_revoked = lambda v, why, now: revoked.append(why)
        decision = soa.handle_request(
            request_for(vm, RequestKind.SCHEDULED, duration=15.0), now=0.0)
        soa.control_tick(10.0, dt=10.0)
        assert soa.is_overclocking(vm.vm_id)
        soa.control_tick(20.0, dt=10.0)
        assert not soa.is_overclocking(vm.vm_id)
        assert vm.freq_ghz == pytest.approx(TURBO)
        assert any("expired" in why for why in revoked)

    def test_budget_exhaustion_reschedules_cores(self):
        """§IV-D: when a VM's cores run dry, the sOA moves it to cores
        with remaining budget instead of revoking."""
        config = SmartOClockConfig(oc_budget_fraction=0.0001)
        soa, server, vm = build(rack_limit=5000.0, config=config,
                                vm_cores=4)
        soa.handle_request(request_for(vm), now=0.0)
        original_cores = {c.index for c in server.vm_cores(vm)}
        soa.control_tick(10.0, dt=10.0)
        # Burn through the tiny budget (0.0001 * week ≈ 60s).
        for t in range(2, 10):
            soa.control_tick(t * 10.0, dt=10.0)
        if soa.is_overclocking(vm.vm_id):
            new_cores = {c.index for c in server.vm_cores(vm)}
            assert new_cores != original_cores

    def test_stop_overclock_returns_to_turbo(self):
        soa, server, vm = build(rack_limit=5000.0)
        soa.handle_request(request_for(vm), now=0.0)
        soa.control_tick(10.0, dt=10.0)
        soa.stop_overclock(vm.vm_id, now=20.0)
        assert vm.freq_ghz == pytest.approx(TURBO)
        assert not soa.is_overclocking(vm.vm_id)

    def test_stop_releases_scheduled_reservation(self):
        soa, server, vm = build(rack_limit=5000.0)
        soa.handle_request(
            request_for(vm, RequestKind.SCHEDULED, duration=3600.0),
            now=0.0)
        soa.stop_overclock(vm.vm_id, now=0.0)
        core = server.vm_cores(vm)[0]
        assert soa.core_budgets[core.index].reserved_seconds == \
            pytest.approx(0.0)

    def test_invalid_dt(self):
        soa, _, _ = build()
        with pytest.raises(ValueError):
            soa.control_tick(0.0, dt=0.0)


class TestBudgets:
    def test_fair_share_before_assignment(self):
        soa, _, _ = build(rack_limit=1000.0, n_servers=4)
        assert soa.assigned_budget(0.0) == pytest.approx(250.0)

    def test_exploration_extends_effective_budget(self):
        soa, _, _ = build()
        soa.explorer.extra_watts = 40.0
        assert soa.effective_budget(0.0) == pytest.approx(
            soa.assigned_budget(0.0) + 40.0)

    def test_rejection_drives_exploration(self):
        """A power-rejected request counts as constrained demand."""
        soa, server, vm = build(rack_limit=370.0, vm_util=1.0,
                                n_servers=2)
        decision = soa.handle_request(request_for(vm), now=0.0)
        assert decision.reason is RejectionReason.POWER_BUDGET
        soa.control_tick(1.0, dt=1.0)
        assert soa.explorer.extra_watts > 0


class TestTelemetryAndProfiles:
    def test_profile_report_shape(self):
        config = SmartOClockConfig()
        soa, server, vm = build(rack_limit=5000.0, config=config)
        soa.telemetry_tick(0.0)
        soa.handle_request(request_for(vm), now=0.0)
        report = soa.build_profile_report()
        n_slots = int(WEEK / config.budget_slot_s)
        assert len(report.regular_power_watts) == n_slots
        assert report.oc_requested_cores.max() == vm.n_cores

    def test_regular_power_excludes_overclock_delta(self):
        soa, server, vm = build(rack_limit=5000.0, vm_util=1.0)
        soa.handle_request(request_for(vm), now=0.0)
        soa.control_tick(10.0, dt=10.0)  # now at 4.0 GHz
        soa.telemetry_tick(10.0)
        report = soa.build_profile_report()
        slot = int(10.0 // soa.config.budget_slot_s)
        measured = server.power_watts()
        assert report.regular_power_watts[slot] < measured

    def test_reset_profile_window(self):
        soa, _, vm = build(rack_limit=5000.0)
        soa.handle_request(request_for(vm), now=0.0)
        soa.reset_profile_window()
        report = soa.build_profile_report()
        assert report.oc_requested_cores.max() == 0


class TestExhaustionPrediction:
    def test_lifetime_exhaustion_signal(self):
        config = SmartOClockConfig(oc_budget_fraction=0.0005,
                                   exhaustion_window_s=900.0)
        soa, server, vm = build(rack_limit=5000.0, config=config)
        signals = []
        soa.on_exhaustion = signals.append
        # budget ≈ 0.0005 * week ≈ 302s < 900s window → signal at grant.
        soa.handle_request(request_for(vm), now=0.0)
        soa.control_tick(10.0, dt=10.0)
        assert signals
        assert signals[0].kind is ExhaustionKind.LIFETIME
        assert signals[0].time_to_exhaustion_s <= 900.0

    def test_no_signal_without_grants(self):
        soa, _, _ = build(rack_limit=5000.0)
        signals = []
        soa.on_exhaustion = signals.append
        soa.control_tick(10.0, dt=10.0)
        assert signals == []

    def test_power_exhaustion_needs_template(self):
        soa, _, vm = build(rack_limit=5000.0)
        assert soa.predict_power_exhaustion(0.0) is None


class TestDemandTelemetry:
    """Per-slot overclock demand: sum across distinct VMs, max per VM."""

    def test_concurrent_vms_sum(self):
        soa, server, vm_a = build(rack_limit=5000.0, vm_cores=4)
        vm_b = VirtualMachine(4, utilization=0.8)
        server.place_vm(vm_b)
        soa.handle_request(request_for(vm_a), now=10.0)
        soa.handle_request(request_for(vm_b), now=20.0)  # same slot
        report = soa.build_profile_report()
        assert report.oc_requested_cores[0] == 8  # 4 + 4, not max(4, 4)

    def test_repeated_requests_same_vm_take_max(self):
        soa, _, vm = build(rack_limit=5000.0, vm_cores=4)
        soa.handle_request(request_for(vm), now=10.0)
        soa.handle_request(request_for(vm), now=20.0)  # same slot, same VM
        report = soa.build_profile_report()
        assert report.oc_requested_cores[0] == 4  # max over time, not sum

    def test_granted_cores_sum_across_vms(self):
        soa, server, vm_a = build(rack_limit=5000.0, vm_cores=4)
        vm_b = VirtualMachine(4, utilization=0.8)
        server.place_vm(vm_b)
        a = soa.handle_request(request_for(vm_a), now=10.0)
        b = soa.handle_request(request_for(vm_b), now=20.0)
        assert a.granted and b.granted
        report = soa.build_profile_report()
        assert report.oc_granted_cores[0] == 8

    def test_distinct_slots_stay_separate(self):
        soa, server, vm_a = build(rack_limit=5000.0, vm_cores=4)
        vm_b = VirtualMachine(4, utilization=0.8)
        server.place_vm(vm_b)
        slot_s = soa.config.budget_slot_s
        soa.handle_request(request_for(vm_a), now=10.0)
        soa.handle_request(request_for(vm_b, now=slot_s + 10.0),
                           now=slot_s + 10.0)
        report = soa.build_profile_report()
        assert report.oc_requested_cores[0] == 4
        assert report.oc_requested_cores[1] == 4

    def test_reset_profile_window_clears_per_vm_state(self):
        soa, server, vm_a = build(rack_limit=5000.0, vm_cores=4)
        vm_b = VirtualMachine(4, utilization=0.8)
        server.place_vm(vm_b)
        soa.handle_request(request_for(vm_a), now=10.0)
        soa.reset_profile_window()
        soa.handle_request(request_for(vm_b), now=20.0)
        report = soa.build_profile_report()
        assert report.oc_requested_cores[0] == 4  # not 8: old window gone


class TestStaleBudgetMargin:
    """sOAs derate an ageing assignment instead of trusting it forever."""

    def assignment_for(self, soa, watts=500.0):
        from repro.core.budgets import BudgetAssignment
        import numpy as np
        n_slots = int(WEEK / soa.config.budget_slot_s)
        return BudgetAssignment(
            slot_s=soa.config.budget_slot_s,
            budgets={soa.server.server_id: np.full(n_slots, watts)})

    def test_unstamped_assignment_is_ageless(self):
        soa, _, _ = build()
        soa.set_budget_assignment(self.assignment_for(soa))
        assert soa.budget_age(10 * WEEK) is None
        assert soa.stale_budget_margin(10 * WEEK) == 0.0
        assert soa.assigned_budget(10 * WEEK) == pytest.approx(500.0)

    def test_fresh_assignment_full_budget(self):
        soa, _, _ = build()
        soa.set_budget_assignment(self.assignment_for(soa), now=0.0)
        assert soa.budget_age(100.0) == pytest.approx(100.0)
        assert soa.stale_budget_margin(100.0) == 0.0
        assert soa.assigned_budget(100.0) == pytest.approx(500.0)

    def test_margin_grows_after_grace(self):
        soa, _, _ = build()
        period = soa.config.budget_update_period_s
        soa.set_budget_assignment(self.assignment_for(soa), now=0.0)
        # grace is 1.5 periods; at 2.5 periods we are 1.0 period over.
        margin = soa.stale_budget_margin(2.5 * period)
        assert margin == pytest.approx(
            soa.config.stale_budget_margin_per_period)
        assert soa.assigned_budget(2.5 * period) == pytest.approx(
            500.0 * (1.0 - margin))

    def test_margin_capped(self):
        soa, _, _ = build()
        period = soa.config.budget_update_period_s
        soa.set_budget_assignment(self.assignment_for(soa), now=0.0)
        assert soa.stale_budget_margin(100 * period) == pytest.approx(
            soa.config.stale_budget_margin_max)

    def test_new_assignment_resets_age(self):
        soa, _, _ = build()
        period = soa.config.budget_update_period_s
        soa.set_budget_assignment(self.assignment_for(soa), now=0.0)
        soa.set_budget_assignment(self.assignment_for(soa),
                                  now=3.0 * period)
        assert soa.stale_budget_margin(3.1 * period) == 0.0
