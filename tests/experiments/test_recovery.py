"""Recovery scenario: identical crash schedule, divergent fates.

The acceptance claims for the crash/recovery lifecycle: under one crash
seed, naive always-overclocking loses strictly more server uptime and
accrues more overclock-attributable wear than SmartOClock with
quarantine; a mid-run sOA crash+restore stays inside the rack capping
envelope, never out-grants its restored budget, and the whole triple is
bit-identical across repeats."""

import json

import pytest

from repro.experiments.recovery import (
    RecoveryScenarioConfig,
    format_recovery_report,
    recovery_experiment,
)


class TestRecoveryScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return recovery_experiment(RecoveryScenarioConfig(seed=0))

    def test_matched_triple_labels(self, result):
        assert result.naive.environment == "NaiveOClock"
        assert result.smart.environment == "SmartOClock"
        assert result.smart_restored.environment == "SmartOClock/restored"

    def test_crashes_actually_happen_on_both_sides(self, result):
        assert result.smart.server_crashes >= 1
        assert result.naive.server_crashes >= 1

    def test_naive_loses_strictly_more_uptime(self, result):
        assert result.naive.server_crashes > result.smart.server_crashes
        assert result.naive.server_downtime_s > result.smart.server_downtime_s
        assert result.naive.server_uptime_fraction < \
            result.smart.server_uptime_fraction

    def test_naive_accrues_more_wear(self, result):
        # wear_accrued_s is the overclock-attributable excess (wear minus
        # busy time): zero for a never-overclocked run by construction.
        assert result.naive.wear_accrued_s > result.smart.wear_accrued_s

    def test_restore_is_conservative_on_wear(self, result):
        # Revoking unprovable grants can only reduce overclock exposure.
        assert result.smart_restored.wear_accrued_s <= \
            result.smart.wear_accrued_s

    def test_capping_envelope_holds_everywhere(self, result):
        for _, run in result.runs:
            assert run.peak_rack_power_fraction <= 1.0 + 1e-9
        assert result.safe

    def test_restored_soas_never_overgrant(self, result):
        assert result.smart_restored.restored_overgrants == 0
        faults = result.smart_restored.faults
        assert faults is not None
        # Every server's sOA process restarted mid-run, on top of any
        # crash-driven restarts, and checkpoints were actually used.
        assert faults["soa_restarts"] > \
            result.smart.faults["soa_restarts"]
        assert faults["restores_from_checkpoint"] >= 1
        assert faults["checkpoints_taken"] >= 1

    def test_vm_evacuation_accounted(self, result):
        faults = result.smart.faults
        assert faults is not None
        assert faults["vms_evacuated"] >= 1
        assert result.smart.vm_downtime_s > 0.0

    def test_bit_identical_across_repeats(self, result):
        again = recovery_experiment(RecoveryScenarioConfig(seed=0))
        # Frozen dataclasses: exact field equality, not approximate.
        assert again.naive == result.naive
        assert again.smart == result.smart
        assert again.smart_restored == result.smart_restored
        assert again.metrics() == result.metrics()

    def test_report_stable_and_verdict_present(self, result):
        report = format_recovery_report(result)
        assert report == format_recovery_report(result)
        assert "safety: ok" in report
        assert "server_crashes" in report
        parsed = json.loads(format_recovery_report(result, as_json=True))
        assert parsed == result.metrics()


class TestConfigValidation:
    def test_rejects_too_short_run(self):
        with pytest.raises(ValueError, match="too short"):
            RecoveryScenarioConfig(duration_s=50.0, tick_s=10.0)

    def test_rejects_nonpositive_base_rate(self):
        with pytest.raises(ValueError, match="base_failures_per_year"):
            RecoveryScenarioConfig(base_failures_per_year=0.0)

    def test_rejects_restart_fraction_out_of_range(self):
        with pytest.raises(ValueError, match="soa_restart_at_fraction"):
            RecoveryScenarioConfig(soa_restart_at_fraction=1.0)

    def test_restart_time_and_peak_placement(self):
        config = RecoveryScenarioConfig(duration_s=3000.0)
        assert config.soa_restart_at_s == 1500.0
        cluster = config.cluster_config()
        assert cluster.peak_start_s == 1000.0
        assert cluster.peak_duration_s == 1000.0
