"""The vectorized fast path must be *bit-identical* to the scalar
reference: every counter of :class:`RackSimResult`, including the float
accumulators, compares equal with ``==`` (no tolerance)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import make_policy
from repro.experiments.largescale import (
    SECONDS_PER_WEEK,
    TABLE1_POLICIES,
    simulate_rack,
    simulate_rack_reference,
)
from repro.traces.synthetic import FleetConfig, generate_fleet

#: Coarser telemetry than the paper's 5-minute default keeps the
#: property-test sims small without changing any code path.
FAST_INTERVAL_S = 900.0


def make_rack(seed, *, weeks=2, servers=6, interval_s=FAST_INTERVAL_S,
              p99_range=(0.80, 0.96)):
    config = FleetConfig(n_racks=1, weeks=weeks, seed=seed,
                         interval_s=interval_s,
                         servers_per_rack_min=servers,
                         servers_per_rack_max=servers,
                         p99_util_beta=(2.0, 2.0),
                         p99_util_range=p99_range)
    return generate_fleet(config).racks[0]


def assert_bit_identical(fast, reference):
    a = dataclasses.asdict(fast)
    b = dataclasses.asdict(reference)
    # Plain == on every field: ints exactly, floats bitwise (the fast
    # path accumulates per-tick contributions in scalar order).
    assert a == b, {k: (a[k], b[k]) for k in a if a[k] != b[k]}


class TestBitIdentical:
    @pytest.mark.parametrize("policy_name", TABLE1_POLICIES)
    def test_all_policies_high_power_rack(self, policy_name):
        rack = make_rack(17, p99_range=(0.88, 0.96))
        fast = simulate_rack(rack, make_policy(policy_name,
                                               len(rack.servers)))
        ref = simulate_rack_reference(
            rack, make_policy(policy_name, len(rack.servers)))
        # A rack that never caps or warns would not exercise the
        # fallback; the seed above produces warning/cap traffic for
        # every overclocking policy.
        assert ref.cap_events > 0 or ref.warnings > 0 \
            or policy_name == "Central"
        assert_bit_identical(fast, ref)

    def test_fast_false_dispatches_to_reference(self):
        rack = make_rack(3)
        a = simulate_rack(rack, make_policy("SmartOClock",
                                            len(rack.servers)), fast=False)
        b = simulate_rack_reference(rack, make_policy("SmartOClock",
                                                      len(rack.servers)))
        assert_bit_identical(a, b)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           servers=st.integers(min_value=3, max_value=8),
           policy_name=st.sampled_from(TABLE1_POLICIES),
           low=st.floats(min_value=0.5, max_value=0.9))
    def test_randomized_fleets(self, seed, servers, policy_name, low):
        rack = make_rack(seed, servers=servers, p99_range=(low, 0.97))
        fast = simulate_rack(rack, make_policy(policy_name,
                                               len(rack.servers)))
        ref = simulate_rack_reference(
            rack, make_policy(policy_name, len(rack.servers)))
        assert_bit_identical(fast, ref)


class TestWeeksRounding:
    """Trace length is derived with ceil division over ``ticks_per_week``:
    a trace one tick short of (or past) a whole number of weeks must not
    silently drop — or reject — the partial evaluation window."""

    def ticks_per_week(self):
        return int(round(SECONDS_PER_WEEK / FAST_INTERVAL_S))

    def test_one_tick_short_of_two_weeks_accepted(self):
        tpw = self.ticks_per_week()
        rack = make_rack(5).window(0.0, (2 * tpw - 1) * FAST_INTERVAL_S)
        assert rack.n_samples == 2 * tpw - 1
        result = simulate_rack(rack, make_policy("SmartOClock",
                                                 len(rack.servers)))
        # First (full) week is history; the partial second week is
        # evaluated tick for tick.
        assert result.ticks == tpw - 1

    def test_one_tick_past_two_weeks_evaluated(self):
        tpw = self.ticks_per_week()
        rack = make_rack(5, weeks=3).window(
            0.0, (2 * tpw + 1) * FAST_INTERVAL_S)
        assert rack.n_samples == 2 * tpw + 1
        result = simulate_rack(rack, make_policy("SmartOClock",
                                                 len(rack.servers)))
        assert result.ticks == tpw + 1

    def test_partial_week_fast_matches_reference(self):
        tpw = self.ticks_per_week()
        rack = make_rack(11, weeks=3, p99_range=(0.88, 0.96)).window(
            0.0, (2 * tpw + 7) * FAST_INTERVAL_S)
        fast = simulate_rack(rack, make_policy("NoWarning",
                                               len(rack.servers)))
        ref = simulate_rack_reference(rack, make_policy("NoWarning",
                                                        len(rack.servers)))
        assert_bit_identical(fast, ref)

    def test_single_week_still_rejected(self):
        tpw = self.ticks_per_week()
        rack = make_rack(5).window(0.0, tpw * FAST_INTERVAL_S)
        assert rack.n_samples == tpw
        with pytest.raises(ValueError, match="2 weeks"):
            simulate_rack(rack, make_policy("Central", len(rack.servers)))
