"""Fault-injection experiment: decentralization scenario + determinism.

Covers the paper's §III Q5 claim end to end: a gOA killed mid-run leaves
the sOAs operating on their last assignment, the rack never escapes the
capping envelope, and the whole scenario is bit-identical under a fixed
seed — so CI can diff repeated runs.
"""

import dataclasses

import pytest

from repro.experiments.cluster import ClusterConfig, run_environment
from repro.experiments.faults import (
    FaultScenarioConfig,
    default_fault_plan,
    fault_injection_experiment,
    format_fault_report,
)
from repro.faults import FaultPlan, GoaOutage
from repro.faults.spec import FaultWindow


def small_cluster(**kwargs):
    """A 7-server cluster with the peak in the middle — fast enough to
    run several times per test."""
    defaults = dict(
        n_lc_servers=3, n_ml_servers=2, n_scaleout_servers=2,
        class_counts=(("low", 1), ("medium", 1), ("high", 1)),
        duration_s=1200.0, tick_s=10.0,
        peak_start_s=400.0, peak_duration_s=400.0,
        rack_limit_factor=1.05, seed=3)
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def goa_kill_plan(config):
    """Kill the gOA halfway through the run, forever."""
    return FaultPlan(goa_outages=(
        GoaOutage(FaultWindow(config.duration_s / 2.0,
                              config.duration_s)),))


class TestDecentralizationScenario:
    """Kill the gOA mid-run: sOAs must carry on, safely, reproducibly."""

    @pytest.fixture(scope="class")
    def runs(self):
        config = small_cluster()
        plan = goa_kill_plan(config)
        kwargs = dict(fault_plan=plan, label="faulted")
        return (config,
                run_environment("SmartOClock", config),
                run_environment("SmartOClock", config, **kwargs),
                run_environment("SmartOClock", config, **kwargs))

    def test_goa_cycles_actually_missed(self, runs):
        _, _, faulted, _ = runs
        assert faulted.faults is not None
        assert faulted.faults["goa_cycles_missed"] >= 1
        # A pure outage plan drops nothing else.
        assert faulted.faults["messages_dropped"] == 0
        assert faulted.faults["telemetry_dropped"] == 0

    def test_soas_keep_overclocking_after_goa_death(self, runs):
        _, _, faulted, _ = runs
        assert faulted.overclock_grants > 0

    def test_rack_stays_inside_capping_envelope(self, runs):
        _, fault_free, faulted, _ = runs
        assert faulted.peak_rack_power_fraction <= 1.0 + 1e-9
        assert fault_free.peak_rack_power_fraction <= 1.0 + 1e-9

    def test_bit_identical_under_fixed_seed(self, runs):
        _, _, first, second = runs
        assert first == second  # frozen dataclass: exact field equality

    def test_fault_free_run_reports_no_fault_counters(self, runs):
        _, fault_free, _, _ = runs
        assert fault_free.faults is None


class TestFaultInjectionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return fault_injection_experiment(
            FaultScenarioConfig(duration_s=900.0, seed=5))

    def test_matched_pair_shares_trace(self, result):
        assert result.fault_free.environment == "SmartOClock/fault-free"
        assert result.faulted.environment == "SmartOClock/faulted"

    def test_faults_actually_fired(self, result):
        counters = result.faulted.faults
        assert counters is not None
        assert counters["goa_cycles_missed"] >= 1
        assert counters["telemetry_dropped"] >= 1
        # Misprediction skew only fires once a template exists, which a
        # 900 s run never reaches — the CI smoke run (3600 s) covers it.
        assert (counters["messages_dropped"]
                + counters["messages_delayed"]) >= 1

    def test_graceful_degradation(self, result):
        assert result.faulted.peak_rack_power_fraction <= 1.0 + 1e-9

    def test_metrics_fingerprint_deterministic(self, result):
        again = fault_injection_experiment(
            FaultScenarioConfig(duration_s=900.0, seed=5))
        assert result.metrics() == again.metrics()

    def test_report_stable_and_verdict_present(self, result):
        report = format_fault_report(result)
        assert report == format_fault_report(result)
        assert "degradation:" in report
        assert "goa_cycles_missed" in report

    def test_fault_seed_changes_fates_not_trace(self, result):
        config = FaultScenarioConfig(duration_s=900.0, seed=5)
        other = run_environment(
            "SmartOClock", config.cluster_config(),
            fault_plan=default_fault_plan(config), fault_seed=99,
            label="SmartOClock/faulted")
        baseline = result.faulted.faults
        assert other.faults is not None and baseline is not None
        # Different fault seed → different stochastic fate counts (the
        # deterministic outage misses the same gOA cycles either way).
        assert other.faults["goa_cycles_missed"] == \
            baseline["goa_cycles_missed"]
        assert (other.faults["messages_dropped"],
                other.faults["telemetry_dropped"]) != \
            (baseline["messages_dropped"],
             baseline["telemetry_dropped"])


class TestPlanValidation:
    def test_fault_plan_rejected_for_control_plane_free_env(self):
        config = small_cluster(duration_s=300.0)
        with pytest.raises(ValueError, match="control plane"):
            run_environment("Baseline", config,
                            fault_plan=goa_kill_plan(config))

    def test_scenario_config_rejects_too_short_run(self):
        with pytest.raises(ValueError, match="too short"):
            FaultScenarioConfig(duration_s=10.0, tick_s=10.0)

    def test_default_plan_windows_cover_phases(self):
        config = FaultScenarioConfig()
        plan = default_fault_plan(config)
        assert plan.goa_down("rack-main", config.outage_start_s)
        assert not plan.goa_down("rack-main",
                                 config.outage_start_s - 1.0)
        assert dataclasses.replace(config).outage_start_s == \
            config.duration_s / 3.0
