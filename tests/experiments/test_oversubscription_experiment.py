"""Oversubscription ablation + mispredict stress (ISSUE 8 tentpole).

The expensive artifacts (one ablation sweep, one stress quadruple) are
computed once per module and shared; assertions slice them from many
angles.
"""

import json

import pytest

from repro.core.oversubscription import RISK_ORDER
from repro.experiments.oversubscription import (
    ABLATION_POLICIES,
    OversubExperimentResult,
    OversubScenarioConfig,
    format_oversub_report,
    mispredict_stress,
    oversubscription_ablation,
)


@pytest.fixture(scope="module")
def config():
    return OversubScenarioConfig()


@pytest.fixture(scope="module")
def ablation(config):
    return oversubscription_ablation(config)


@pytest.fixture(scope="module")
def stress(config):
    return mispredict_stress(config)


@pytest.fixture(scope="module")
def result(ablation, stress):
    return OversubExperimentResult(ablation=ablation, stress=stress)


class TestScenarioConfig:
    def test_policy_list_covers_ladder_and_anchors(self):
        assert ABLATION_POLICIES[:2] == ("NaiveOClock", "SmartOClock")
        assert ABLATION_POLICIES[2:] == tuple(
            f"SmartOClock+OSub:{risk}" for risk in RISK_ORDER)

    def test_validation(self):
        with pytest.raises(ValueError, match="weeks"):
            OversubScenarioConfig(weeks=1)
        with pytest.raises(ValueError, match="misprediction_scale"):
            OversubScenarioConfig(misprediction_scale=0.0)
        with pytest.raises(ValueError, match="too short"):
            OversubScenarioConfig(duration_s=30.0, tick_s=10.0)

    def test_fault_window_covers_the_peak(self, config):
        plan = config.fault_plan()
        (fault,) = plan.mispredictions
        cluster = config.cluster_config()
        peak_mid = cluster.peak_start_s + cluster.peak_duration_s / 2.0
        assert fault.window.active(peak_mid)
        assert fault.scale == config.misprediction_scale


class TestAblation:
    def test_all_policies_scored(self, ablation):
        assert set(ablation.scores) == set(ABLATION_POLICIES)

    def test_monotone_tradeoff(self, ablation):
        """The acceptance criterion: higher risk strands fewer watts and
        caps at least as often, monotonically along the ladder."""
        assert ablation.monotone
        rows = [score for _, score in ablation.ladder]
        # The dial must actually move: endpoints differ on both axes.
        assert rows[-1].stranded_watts < rows[0].stranded_watts
        assert rows[-1].cap_events > rows[0].cap_events

    def test_admitted_monotone_in_risk(self, ablation):
        admitted = [score.osub_admitted_watts
                    for _, score in ablation.ladder]
        assert admitted == sorted(admitted)
        assert admitted[0] > 0.0

    def test_envelope(self, ablation):
        """Conservative oversubscription stays within the Table-1
        envelope the anchors define."""
        assert ablation.envelope_ok
        conservative = ablation.scores["SmartOClock+OSub:conservative"]
        naive = ablation.scores["NaiveOClock"]
        smart = ablation.scores["SmartOClock"]
        assert smart.cap_events \
            <= conservative.cap_events <= naive.cap_events
        assert smart.success_rate \
            >= conservative.success_rate >= naive.success_rate

    def test_cap_attribution(self, ablation):
        """Every oversubscribing policy's caps happen while headroom is
        admitted (attributed), and the anchors attribute nothing."""
        for name, score in ablation.scores.items():
            if ":" in name:
                assert 0 < score.osub_cap_events <= score.cap_events
            else:
                assert score.osub_cap_events == 0
                assert score.osub_admitted_watts == 0.0
                assert score.stranded_watts > 0.0  # still accounted

    def test_oversubscription_recovers_stranded_power(self, ablation):
        """The point of the subsystem: every risk level strands less
        power than the no-oversubscription SmartOClock baseline."""
        smart = ablation.scores["SmartOClock"]
        for _, score in ablation.ladder:
            assert score.stranded_watts < smart.stranded_watts


class TestMispredictStress:
    def test_all_runs_safe(self, stress):
        """Satellite 4: capping absorbs the misprediction — no run may
        leave its rack above the physical limit post-enforcement."""
        assert stress.safe
        assert stress.osub_faulted.peak_rack_power_fraction <= 1.0 + 1e-9

    def test_faulted_run_within_envelope(self, stress):
        """Satellite 4: the faulted conservative run degrades gracefully
        — its cap-event rate stays within the NaiveOClock envelope."""
        assert stress.envelope_ok
        assert stress.osub_faulted.cap_events <= stress.naive.cap_events

    def test_graceful_degradation_vs_fault_free(self, stress):
        """The fault may cost caps/SLO but must not blow either up past
        the envelope anchor; the runs stay materially comparable."""
        assert stress.osub_faulted.cap_events \
            <= stress.osub.cap_events + stress.naive.cap_events
        assert stress.osub_faulted.missed_slo_ticks_fraction \
            <= stress.osub.missed_slo_ticks_fraction + 0.05

    def test_oversubscription_grants_more_than_baseline(self, stress):
        """Admitted headroom turns into real grants on the constrained
        rack — otherwise the subsystem is wired to nothing."""
        assert stress.osub.overclock_grants > stress.smart.overclock_grants

    def test_envelope_anchor_actually_caps(self, stress):
        """The naive anchor must cap on this scenario, otherwise the
        envelope comparisons above are vacuous."""
        assert stress.naive.cap_events > 0


class TestResultAndReport:
    def test_ok_aggregates_all_checks(self, result):
        assert result.ok

    def test_metrics_round_trip_canonical_json(self, result):
        """metrics() is the determinism fingerprint CI diffs: it must be
        canonical-JSON serializable with purely numeric leaves."""
        text = json.dumps(result.metrics(), sort_keys=True)
        assert json.loads(text) == result.metrics()
        checks = result.metrics()["verdicts"]["checks"]
        assert checks == {"monotone": 1.0, "ablation_envelope_ok": 1.0,
                          "stress_safe": 1.0, "stress_envelope_ok": 1.0}

    def test_text_report_lists_every_policy_and_run(self, result):
        report = format_oversub_report(result)
        for name in ABLATION_POLICIES:
            assert name in report
        for name, _ in result.stress.runs:
            assert name in report
        assert "FAIL" not in report

    def test_json_report_matches_metrics(self, result):
        report = format_oversub_report(result, as_json=True)
        assert json.loads(report) == result.metrics()
