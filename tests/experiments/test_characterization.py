"""Tests for the §II-III characterization drivers (Figs. 1-9)."""

import numpy as np
import pytest

from repro.experiments.characterization import (
    fig1_load_patterns,
    fig2_fig3_microservice_sweep,
    fig4_webconf,
    fig5_rack_power_cdf,
    fig6_rack_week,
    fig7_aging_policies,
    fig8_prediction_rmse_by_region,
    fig9_server_heterogeneity,
    dominant_server_changes,
)


class TestFig1:
    def test_three_services(self):
        patterns = fig1_load_patterns()
        assert set(patterns) == {"Service A", "Service B", "Service C"}

    def test_service_a_peaks_in_business_window(self):
        hours, levels = fig1_load_patterns()["Service A"]
        peak_hours = hours[levels > 0.99]
        assert peak_hours.min() >= 9.0 and peak_hours.max() <= 13.0

    def test_services_bc_have_top_of_hour_spikes(self):
        hours, levels = fig1_load_patterns(step_s=60.0)["Service B"]
        minute = (hours * 60.0) % 60.0
        spike = levels[minute < 5.0]
        rest = levels[(minute > 10.0) & (minute < 25.0)]
        assert spike.mean() > 1.5 * rest.mean()


class TestFig2Fig3:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig2_fig3_microservice_sweep()

    def test_full_grid(self, sweep):
        assert len(sweep) == 8 * 3 * 3

    def test_overclock_beats_baseline(self, sweep):
        """Overclocking reduces tail latency everywhere."""
        by_key = {(p.service, p.load, p.environment): p for p in sweep}
        for service in {p.service for p in sweep}:
            for load in ("low", "medium", "high"):
                base = by_key[(service, load, "Baseline")]
                oc = by_key[(service, load, "Overclock")]
                assert oc.p99_ms < base.p99_ms

    def test_scaleout_has_best_latency_at_high_load(self, sweep):
        by_key = {(p.service, p.load, p.environment): p for p in sweep}
        for service in {p.service for p in sweep}:
            so = by_key[(service, "high", "ScaleOut")]
            base = by_key[(service, "high", "Baseline")]
            assert so.p99_ms < base.p99_ms

    def test_usr_tolerates_higher_utilization(self, sweep):
        """§III Q1: Usr stays within SLO at loads (and utilizations)
        where UrlShort has long since failed."""
        by_key = {(p.service, p.load, p.environment): p for p in sweep}
        usr = by_key[("Usr", "medium", "Baseline")]
        assert usr.meets_slo
        assert usr.utilization > by_key[
            ("UrlShort", "low", "Baseline")].utilization

    def test_urlshort_violates_at_low_utilization(self, sweep):
        """...while UrlShort misses its SLO even at low utilization."""
        by_key = {(p.service, p.load, p.environment): p for p in sweep}
        urlshort = by_key[("UrlShort", "low", "Baseline")]
        assert not urlshort.meets_slo
        # And its utilization really is lower than Usr's at high load:
        assert urlshort.utilization < by_key[
            ("Usr", "high", "Baseline")].utilization

    def test_utilization_ordering(self, sweep):
        """Overclock lowers utilization; ScaleOut halves it."""
        by_key = {(p.service, p.load, p.environment): p for p in sweep}
        point = by_key[("ComposePost", "medium", "Baseline")]
        assert by_key[("ComposePost", "medium", "Overclock")].utilization \
            < point.utilization
        assert by_key[("ComposePost", "medium", "ScaleOut")].utilization \
            == pytest.approx(point.utilization / 2, rel=1e-6)


class TestFig4:
    def test_deployment_goal_met_without_overclocking(self):
        results = fig4_webconf()
        assert results["Baseline"]["meets_target"]
        assert not results["Baseline"]["overclock_needed"]

    def test_overclocking_lowers_vm2_utilization(self):
        results = fig4_webconf()
        assert results["Overclock"]["vm2_util"] < \
            results["Baseline"]["vm2_util"]

    def test_vm1_untouched(self):
        results = fig4_webconf()
        assert results["Overclock"]["vm1_util"] == pytest.approx(
            results["Baseline"]["vm1_util"])


class TestFig5:
    @pytest.fixture(scope="class")
    def cdfs(self):
        return fig5_rack_power_cdf(n_racks=40, seed=11)

    def test_has_three_series(self, cdfs):
        assert set(cdfs) == {"avg", "p50", "p99"}

    def test_median_average_utilization_near_paper(self, cdfs):
        """Paper: half the racks average below 66 %."""
        median_avg = cdfs["avg"].value_at(0.5)
        assert 0.45 <= median_avg <= 0.75

    def test_median_p99_utilization_near_paper(self, cdfs):
        """Paper: 50 % of racks have P99 below 73 %."""
        median_p99 = cdfs["p99"].value_at(0.5)
        assert 0.6 <= median_p99 <= 0.85

    def test_ordering_avg_p50_p99(self, cdfs):
        assert cdfs["avg"].value_at(0.5) <= cdfs["p99"].value_at(0.5)


class TestFig6:
    def test_baseline_under_limit_overclock_over(self):
        """Fig. 6: baseline stays below the limit; naive overclocking
        exceeds it part of the time."""
        series = fig6_rack_week()
        assert series.baseline_cap_fraction < 0.02
        assert series.overclocked_cap_fraction > 0.0

    def test_majority_of_time_has_headroom(self):
        """Paper: no capping for ~85 % of the time even when naive."""
        series = fig6_rack_week()
        assert series.no_cap_fraction > 0.6


class TestFig7:
    @pytest.fixture(scope="class")
    def aging(self):
        return fig7_aging_policies(days=5)

    def test_four_policies(self, aging):
        assert set(aging) == {"Expected ageing", "Non-overclocked",
                              "Always overclock", "Overclock-aware"}

    def test_expected_is_identity(self, aging):
        assert aging["Expected ageing"][-1] == pytest.approx(5.0, rel=0.01)

    def test_non_overclocked_under_two_days(self, aging):
        """Paper: 'actual ageing is less than 2 days' over 5 days."""
        assert aging["Non-overclocked"][-1] < 2.0

    def test_always_overclock_over_ten_days(self, aging):
        """Paper: 'Always overclock ages the CPU over 10 days'."""
        assert aging["Always overclock"][-1] > 10.0

    def test_overclock_aware_within_expected(self, aging):
        """Paper: the aware policy consumes credits without exceeding the
        expected ageing."""
        assert aging["Overclock-aware"][-1] <= 5.0 * 1.05
        assert aging["Overclock-aware"][-1] > aging["Non-overclocked"][-1]

    def test_cumulative_series_monotone(self, aging):
        for series in aging.values():
            assert np.all(np.diff(series) >= -1e-12)


class TestFig8:
    def test_regional_ordering(self):
        cdfs = fig8_prediction_rmse_by_region(n_racks=8, seed=31)
        assert len(cdfs) == 4
        medians = [cdf.value_at(0.5) for cdf in cdfs.values()]
        # Noisier regions have larger median RMSE.
        assert medians[0] < medians[-1]

    def test_rmse_small_relative_to_server_power(self):
        """Paper: RMSE low even at high percentiles (watts-level)."""
        cdfs = fig8_prediction_rmse_by_region(n_racks=8, seed=31)
        for cdf in cdfs.values():
            assert cdf.value_at(0.9) < 30.0  # W per server


class TestFig9:
    def test_six_servers_normalized(self):
        series = fig9_server_heterogeneity()
        assert len(series) == 6
        for values in series.values():
            assert values.max() <= 1.0 + 1e-9

    def test_servers_spread_by_thirty_percent(self):
        """Paper: 'some servers may use even 30 % less power'."""
        series = fig9_server_heterogeneity()
        matrix = np.stack(list(series.values()))
        spread = matrix.max(axis=0) - matrix.min(axis=0)
        assert spread.max() >= 0.3

    def test_dominant_server_changes(self):
        """Paper: the power-dominant server changes over time."""
        series = fig9_server_heterogeneity()
        assert dominant_server_changes(series) >= 2
