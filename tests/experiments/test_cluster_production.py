"""Tests for the cluster experiment (§V-A) and production study (§V-C).

The cluster runs here use a compressed timeline (short peak, coarse
ticks) so the suite stays fast; the full-scale runs live in benchmarks/.
"""

import dataclasses

import pytest

from repro.experiments.cluster import (
    ClusterConfig,
    LatencyAggregator,
    run_environment,
)
from repro.experiments.production import fig16_service_b, fig17_service_c


def fast_config(**kwargs):
    defaults = dict(duration_s=1800.0, tick_s=20.0, peak_start_s=600.0,
                    peak_duration_s=600.0, seed=1)
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


@pytest.fixture(scope="module")
def results():
    config = fast_config()
    return {env: run_environment(env, config)
            for env in ("Baseline", "ScaleOut", "ScaleUp", "SmartOClock")}


class TestLatencyAggregator:
    def test_quantile_of_single_queue(self):
        from repro.workloads.queueing import MMcQueue
        agg = LatencyAggregator()
        agg.add_tick(weight=100.0, offered_rho=0.6, mu=100.0, servers=4,
                     slo_ms=50.0)
        queue = MMcQueue(0.6 * 4 * 100.0, 100.0, 4)
        assert agg.p99_ms() == pytest.approx(
            queue.p99_response() * 1000.0, rel=1e-3)

    def test_mixture_between_components(self):
        agg = LatencyAggregator()
        agg.add_tick(weight=50.0, offered_rho=0.2, mu=100.0, servers=4,
                     slo_ms=50.0)
        agg.add_tick(weight=50.0, offered_rho=0.9, mu=100.0, servers=4,
                     slo_ms=50.0)
        lone_low = LatencyAggregator()
        lone_low.add_tick(weight=1.0, offered_rho=0.2, mu=100.0,
                          servers=4, slo_ms=50.0)
        lone_high = LatencyAggregator()
        lone_high.add_tick(weight=1.0, offered_rho=0.9, mu=100.0,
                           servers=4, slo_ms=50.0)
        assert lone_low.p99_ms() < agg.p99_ms() < 2 * lone_high.p99_ms()

    def test_overload_scales_latency(self):
        agg = LatencyAggregator()
        agg.add_tick(weight=1.0, offered_rho=1.5, mu=100.0, servers=4,
                     slo_ms=50.0)
        capped = LatencyAggregator()
        capped.add_tick(weight=1.0, offered_rho=0.98, mu=100.0, servers=4,
                        slo_ms=50.0)
        assert agg.p99_ms() > capped.p99_ms()

    def test_zero_weight_ignored(self):
        agg = LatencyAggregator()
        agg.add_tick(weight=0.0, offered_rho=0.5, mu=100.0, servers=2,
                     slo_ms=10.0)
        with pytest.raises(ValueError):
            agg.p99_ms()

    def test_missed_fraction_in_unit_interval(self):
        agg = LatencyAggregator()
        agg.add_tick(weight=10.0, offered_rho=0.7, mu=100.0, servers=2,
                     slo_ms=30.0)
        assert 0.0 <= agg.missed_slo_fraction() <= 1.0


class TestClusterEnvironments:
    def test_all_environments_run(self, results):
        assert set(results) == {"Baseline", "ScaleOut", "ScaleUp",
                                "SmartOClock"}
        for result in results.values():
            assert set(result.per_class) == {"low", "medium", "high"}

    def test_low_load_unaffected_everywhere(self, results):
        """Paper: 'All systems perform equally well under low load.'"""
        p99s = [r.per_class["low"].p99_ms for r in results.values()]
        assert max(p99s) <= min(p99s) * 1.3

    def test_smartoclock_beats_baseline_at_high_load(self, results):
        assert results["SmartOClock"].per_class["high"].p99_ms < \
            results["Baseline"].per_class["high"].p99_ms

    def test_smartoclock_uses_fewer_instances_than_scaleout(self, results):
        smart = results["SmartOClock"].per_class["high"].avg_instances
        scale_out = results["ScaleOut"].per_class["high"].avg_instances
        assert smart <= scale_out

    def test_baseline_never_scales(self, results):
        assert results["Baseline"].scale_outs == 0
        for metrics in results["Baseline"].per_class.values():
            assert metrics.avg_instances == 1.0

    def test_smartoclock_overclocks(self, results):
        assert results["SmartOClock"].overclock_grants > 0
        assert results["Baseline"].overclock_grants == 0

    def test_scaleup_raises_home_server_energy(self, results):
        """Vertical scaling burns more power on the host server."""
        assert results["ScaleUp"].per_class["high"].home_server_energy_j > \
            results["Baseline"].per_class["high"].home_server_energy_j

    def test_ml_throughput_unharmed_without_power_constraint(self, results):
        for result in results.values():
            assert result.ml_throughput == pytest.approx(1000.0, rel=0.02)

    def test_unknown_environment_rejected(self):
        with pytest.raises(ValueError):
            run_environment("Bogus", fast_config())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(class_counts=(("low", 1),))
        with pytest.raises(ValueError):
            ClusterConfig(tick_s=0.0)


class TestProductionServices:
    def test_service_b_util_reduction(self):
        """Fig. 16: overclocking reduces utilization at peak RPS."""
        result = fig16_service_b()
        assert 0.10 <= result.util_reduction_at_peak <= 0.25
        assert result.overclocked_util[-1] < result.baseline_util[-1]

    def test_service_b_iso_util_gain(self):
        """Fig. 16 alternate reading: more RPS at iso-utilization."""
        result = fig16_service_b()
        assert 0.10 <= result.iso_util_rps_gain <= 0.30

    def test_service_b_monotone_in_rps(self):
        result = fig16_service_b()
        assert all(a <= b for a, b in
                   zip(result.baseline_util, result.baseline_util[1:]))

    def test_service_b_validation(self):
        with pytest.raises(ValueError):
            fig16_service_b(peak_rps=0.0)

    def test_service_c_peak_reduction(self):
        """Fig. 17: 5-minute peaks shrink by ~16 %."""
        result = fig17_service_c()
        assert 0.10 <= result.peak_reduction <= 0.25

    def test_service_c_series_consistent(self):
        result = fig17_service_c()
        assert (result.overclocked_util <= result.baseline_util + 1e-12).all()
