"""Parameter-sensitivity tests for the trace-driven simulator."""

import pytest

from repro.core.policies import make_policy
from repro.experiments.largescale import simulate_rack
from repro.traces.synthetic import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def rack():
    fleet = generate_fleet(FleetConfig(
        n_racks=1, weeks=2, seed=17, servers_per_rack_min=10,
        servers_per_rack_max=10, p99_util_beta=(2.0, 2.0),
        p99_util_range=(0.86, 0.94)))
    return fleet.racks[0]


class TestWarningFraction:
    def test_lower_threshold_means_more_warnings(self, rack):
        low = simulate_rack(rack, make_policy("NoFeedback",
                                              len(rack.servers)),
                            warning_fraction=0.85)
        high = simulate_rack(rack, make_policy("NoFeedback",
                                               len(rack.servers)),
                             warning_fraction=0.99)
        assert low.warnings >= high.warnings


class TestTargetFrequency:
    def test_lower_target_reduces_performance_ceiling(self, rack):
        full = simulate_rack(rack, make_policy("Central",
                                               len(rack.servers)),
                             target_freq_ghz=4.0)
        mild = simulate_rack(rack, make_policy("Central",
                                               len(rack.servers)),
                             target_freq_ghz=3.6)
        assert mild.normalized_performance <= \
            full.normalized_performance + 1e-9
        # But a milder boost fits more grants under the same headroom.
        assert mild.success_rate >= full.success_rate - 1e-9


class TestAccountingIdentities:
    @pytest.mark.parametrize("name", ["Central", "NaiveOClock",
                                      "NoFeedback", "NoWarning",
                                      "SmartOClock"])
    def test_rates_in_bounds_for_every_policy(self, rack, name):
        result = simulate_rack(rack, make_policy(name, len(rack.servers)))
        assert 0.0 <= result.success_rate <= 1.0
        assert 1.0 - 0.5 <= result.normalized_performance <= 4.0 / 3.3
        assert result.granted_core_ticks <= result.demanded_core_ticks
        assert result.warnings >= result.cap_events
