"""Tests for result formatting/reporting helpers."""

import numpy as np
import pytest

from repro.experiments.largescale import PolicyScore, format_table1
from repro.experiments.cluster import ClassMetrics, EnvironmentResult


def score(name, caps=10, norm=2.0, success=0.9, penalty=0.1, perf=1.15):
    return PolicyScore(policy=name, cap_events=caps, normalized_caps=norm,
                       success_rate=success, cap_penalty=penalty,
                       normalized_performance=perf)


class TestTable1Formatting:
    def test_row_contains_all_columns(self):
        row = score("SmartOClock").row()
        assert "SmartOClock" in row
        assert "90.0%" in row
        assert "1.150" in row

    def test_format_groups_by_cluster(self):
        results = {
            "High-Power": {"Central": score("Central"),
                           "SmartOClock": score("SmartOClock")},
            "Low-Power": {"Central": score("Central")},
        }
        text = format_table1(results)
        assert "--- High-Power ---" in text
        assert "--- Low-Power ---" in text
        assert text.index("High-Power") < text.index("Low-Power")

    def test_unknown_policies_skipped(self):
        results = {"X": {"Mystery": score("Mystery")}}
        text = format_table1(results)
        assert "Mystery" not in text


class TestEnvironmentResult:
    def test_avg_instances_overall(self):
        metrics = {
            name: ClassMetrics(p99_ms=1.0, mean_ms=1.0,
                               missed_slo_fraction=0.0,
                               avg_instances=n,
                               home_server_energy_j=1.0)
            for name, n in (("low", 1.0), ("medium", 2.0), ("high", 3.0))
        }
        result = EnvironmentResult(
            environment="x", per_class=metrics, total_energy_j=1.0,
            ml_throughput=1.0, cap_events=0, overclock_grants=0,
            overclock_rejections=0, scale_outs=0,
            missed_slo_ticks_fraction=0.0)
        assert result.avg_instances_overall() == pytest.approx(2.0)
