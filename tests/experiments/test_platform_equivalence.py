"""Equivalence oracle for the fast platform path (ISSUE 10).

Two regression families guard the perf work:

* **Eager vs lazy** — ``SmartOClockConfig(eager_accounting=True)`` runs
  the original per-tick accounting loops (every core accrued every
  tick, every sOA's full control tick, every channel pumped).  The
  lazy default coalesces accrual into change-point runs and skips idle
  control work.  The two must agree *field by field* — fault counters,
  grant/channel statistics, per-core busy/overclock seconds, per-sOA
  wear ledgers, and the full rack power trajectory — under composite
  fault plans, because floats fold left: the lazy path must replay the
  identical additions, not just an algebraically equal total.

* **Worker-count invariance** — the chaos sweep must be byte-identical
  (canonical-JSON report) across ``workers`` 1/2/4: seed-keyed merge,
  no per-process state leaking into results.
"""

import numpy as np
import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.experiments.chaos import ChaosConfig, chaos_sweep, format_chaos_report
from repro.faults import FaultInjector, event_entropy
from repro.faults.chaos import generate_plan

_MODEL = DEFAULT_POWER_MODEL
_SLO_MS = 10.0

# Short trials keep the 1/2/4-worker sweeps affordable; the CLI-default
# scale is exercised by the CI smoke diff.
SHORT = ChaosConfig(duration_s=600.0)


def _run_faulted_platform(seed: int, eager: bool, probe=None):
    """One chaos-style faulted run, returning every observable the
    lazy path could plausibly corrupt.  ``probe(platform, servers)``,
    if given, runs after every third tick — the hook the mid-run-read
    test uses to exercise flush-on-read paths at arbitrary points."""
    duration_s, tick_s, n_servers, vm_cores = 1200.0, 10.0, 3, 24
    base_util = 0.75
    server_ids = tuple(f"s{i}" for i in range(n_servers))
    plan = generate_plan(seed, duration_s=duration_s,
                         server_ids=server_ids, tick_s=tick_s)
    injector = FaultInjector(plan, seed=seed)

    busy_watts = _MODEL.uniform_server_watts(base_util, _MODEL.plan.turbo_ghz,
                                             vm_cores)
    rack = Rack("r0", 1.06 * n_servers * busy_watts)
    servers = [Server(sid, _MODEL) for sid in server_ids]
    for server in servers:
        rack.add_server(server)
    datacenter = Datacenter("equiv")
    datacenter.add_rack(rack)
    config = SmartOClockConfig(
        control_interval_s=tick_s,
        telemetry_interval_s=6 * tick_s,
        budget_update_period_s=duration_s / 6.0,
        checkpoint_interval_s=duration_s / 15.0,
        soa_restart_delay_s=3 * tick_s,
        server_restart_delay_s=6 * tick_s,
        vm_restart_delay_s=3 * tick_s,
        enable_goa_ha=True,
        goa_heartbeat_interval_s=3 * tick_s,
        goa_lease_s=9 * tick_s,
        eager_accounting=eager)
    platform = SmartOClockPlatform(datacenter, config, fault_injector=injector)

    services = []
    for i, server in enumerate(servers):
        vm = VirtualMachine(vm_cores, name=f"svc{i}-vm", priority=10,
                            workload=f"svc{i}", utilization=base_util)
        server.place_vm(vm)
        agent = platform.register_service(
            f"svc{i}", metrics_policy=MetricsTriggerPolicy(
                start_fraction=0.7, stop_fraction=0.2, consecutive=2))
        platform.attach_vm(f"svc{i}", vm,
                           target_freq_ghz=_MODEL.plan.overclock_max_ghz,
                           priority=10)
        services.append((agent, vm))

    ticks = int(duration_s / tick_s)
    rng = np.random.default_rng(
        np.random.SeedSequence(event_entropy(seed, "chaos-load")))
    util_noise = rng.uniform(-0.1, 0.1, size=(ticks, len(services)))
    p99_noise = rng.uniform(-1.0, 1.0, size=(ticks, len(services)))

    power_trajectory = []
    for i in range(ticks):
        now = i * tick_s
        in_peak = duration_s / 3.0 <= now < 2.0 * duration_s / 3.0
        for j, (agent, vm) in enumerate(services):
            vm.set_utilization(float(np.clip(
                base_util + (0.15 if in_peak else 0.0) + util_noise[i, j],
                0.05, 1.0)))
            agent.observe(now, (8.5 if in_peak else 2.5)
                          + float(p99_noise[i, j]), _SLO_MS)
        platform.tick(now, tick_s)
        power_trajectory.append(rack.power_watts())
        if probe is not None and i % 3 == 0:
            probe(platform, servers)
    if platform.lifecycle is not None:
        platform.lifecycle.finish(duration_s)

    return {
        "fault_counters": platform.fault_counters(),
        "grant_statistics": platform.grant_statistics(),
        "channel_statistics": platform.channel_statistics(),
        "power_trajectory": power_trajectory,
        "cores": [(core.busy_seconds, core.overclock_seconds)
                  for server in servers for core in server.cores],
        "wear": [counter.state_dict()
                 for soa in platform.soas.values()
                 for counter in soa.wear_counters],
    }


class TestEagerVsLazy:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_faulted_run_matches_field_by_field(self, seed):
        lazy = _run_faulted_platform(seed, eager=False)
        eager = _run_faulted_platform(seed, eager=True)
        for key in eager:
            assert lazy[key] == eager[key], \
                f"seed {seed}: eager/lazy diverged on {key}"

    def test_mid_run_reads_do_not_perturb_the_run(self):
        # Reads flush pending accrual early (core properties, wear
        # counter state_dicts); forcing those flushes at arbitrary
        # mid-run points must not change where the run ends up — the
        # replayed additions are the same whether folded in one batch
        # at the end or in many partial batches along the way.
        def read_everything(platform, servers):
            for server in servers:
                for core in server.cores:
                    core.busy_seconds
                    core.overclock_seconds
            for soa in platform.soas.values():
                for counter in soa.wear_counters:
                    counter.state_dict()

        undisturbed = _run_faulted_platform(11, eager=False)
        probed = _run_faulted_platform(11, eager=False,
                                       probe=read_everything)
        for key in undisturbed:
            assert probed[key] == undisturbed[key], \
                f"mid-run reads perturbed {key}"

    def test_eager_flag_defaults_off(self):
        assert SmartOClockConfig().eager_accounting is False


class TestWorkerCountInvariance:
    def test_chaos_sweep_byte_identical_across_workers(self):
        reports = {
            workers: format_chaos_report(
                chaos_sweep(10, seed=0, config=SHORT, workers=workers),
                as_json=True)
            for workers in (1, 2, 4)
        }
        assert reports[1] == reports[2]
        assert reports[1] == reports[4]
