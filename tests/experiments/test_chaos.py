"""Chaos harness: sweep determinism, invariant cleanliness, and the
end-to-end failover scenario from the control-plane hardening work."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.experiments.chaos import (
    ChaosConfig,
    chaos_sweep,
    chaos_trial,
    format_chaos_report,
)
from repro.faults import FaultInjector
from repro.faults.chaos import generate_plan
from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultPlan,
    GoaOutage,
    ServerCrashFault,
    window,
)
from repro.sim.monitors import InvariantMonitor

# A short trial keeps the sweep tests fast; the CLI default (1800 s)
# is exercised by the CI smoke run.
SHORT = ChaosConfig(duration_s=600.0)


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        kw = dict(duration_s=1800.0, server_ids=("s0", "s1"))
        assert generate_plan(3, **kw) == generate_plan(3, **kw)
        assert generate_plan(3, **kw) != generate_plan(4, **kw)

    def test_plans_stay_inside_the_run(self):
        for seed in range(20):
            plan = generate_plan(seed, duration_s=1800.0,
                                 server_ids=("s0", "s1", "s2"))
            for fault in (plan.goa_outages + plan.message_faults
                          + plan.telemetry_dropouts + plan.mispredictions
                          + plan.server_crashes
                          + plan.checkpoint_corruptions):
                assert 0.0 <= fault.window.start_s
                assert fault.window.end_s <= 1800.0
            for restart in plan.soa_restarts:
                assert 0.0 <= restart.at_s <= 1800.0

    def test_crashes_always_name_a_server(self):
        for seed in range(30):
            plan = generate_plan(seed, duration_s=1800.0,
                                 server_ids=("s0", "s1"))
            for crash in plan.server_crashes:
                assert crash.server_id in ("s0", "s1")

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="duration"):
            generate_plan(0, duration_s=30.0, server_ids=("s0",))
        with pytest.raises(ValueError, match="server id"):
            generate_plan(0, duration_s=1800.0, server_ids=())


class TestChaosTrials:
    def test_seeds_run_clean(self):
        result = chaos_sweep(3, seed=0, config=SHORT)
        assert result.ok
        assert result.offending_seeds == ()
        assert len(result.trials) == 3
        assert [t.seed for t in result.trials] == [0, 1, 2]

    def test_rerun_is_bit_identical(self):
        first = chaos_trial(5, config=SHORT)
        second = chaos_trial(5, config=SHORT)
        assert first.metrics() == second.metrics()

    def test_faults_actually_fire_across_seeds(self):
        """The harness is vacuous if the sampled plans never do anything:
        across a handful of seeds every counter class must trip."""
        result = chaos_sweep(5, seed=0, config=SHORT)
        totals: dict[str, int] = {}
        for trial in result.trials:
            for key, value in trial.counters.items():
                totals[key] = totals.get(key, 0) + value
        assert totals["messages_dropped"] > 0
        assert totals["telemetry_dropped"] > 0
        assert totals["checkpoints_corrupted"] > 0
        assert totals["ha_heartbeats_sent"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="too short"):
            ChaosConfig(duration_s=100.0)
        with pytest.raises(ValueError, match="servers"):
            ChaosConfig(n_servers=1)
        with pytest.raises(ValueError, match="trials"):
            chaos_sweep(0)


class TestReport:
    def test_text_report_names_trials_and_verdict(self):
        result = chaos_sweep(2, seed=0, config=SHORT)
        text = format_chaos_report(result)
        assert "2 trials, 0 invariant violations" in text
        assert "replay" not in text  # only printed on failure

    def test_json_report_is_the_metrics_fingerprint(self):
        import json

        result = chaos_sweep(2, seed=0, config=SHORT)
        payload = json.loads(format_chaos_report(result, as_json=True))
        assert payload["ok"] is True
        assert [t["seed"] for t in payload["trials"]] == [0, 1]


class TestFailoverScenario:
    """The acceptance scenario: a gOA outage long enough to fail over,
    a server crash whose checkpoint is corrupted, a fenced stale push —
    and the rack inside its envelope throughout."""

    TICK = 10.0
    DURATION = 1800.0
    OUTAGE = window(300.0, 1500.0)

    def build(self):
        config = SmartOClockConfig(
            control_interval_s=self.TICK,
            telemetry_interval_s=60.0,
            budget_update_period_s=150.0,
            checkpoint_interval_s=120.0,
            soa_restart_delay_s=30.0,
            server_restart_delay_s=60.0,
            vm_restart_delay_s=30.0,
            enable_goa_ha=True,
            goa_heartbeat_interval_s=30.0,
            goa_lease_s=90.0)
        plan = FaultPlan(
            goa_outages=(GoaOutage(self.OUTAGE, rack_id="r0"),),
            server_crashes=(ServerCrashFault(window(600.0, 660.0),
                                             server_id="s1"),),
            checkpoint_corruptions=(CheckpointCorruptionFault(
                window(0.0, self.DURATION), corrupt_prob=1.0,
                server_id="s1"),))
        model = DEFAULT_POWER_MODEL
        busy = model.uniform_server_watts(0.75, model.plan.turbo_ghz, 24)
        rack = Rack("r0", 1.06 * 3 * busy)
        servers = [Server(f"s{i}", model) for i in range(3)]
        for server in servers:
            rack.add_server(server)
        dc = Datacenter()
        dc.add_rack(rack)
        platform = SmartOClockPlatform(
            dc, config, fault_injector=FaultInjector(plan, seed=11))
        services = []
        for i, server in enumerate(servers):
            vm = VirtualMachine(24, name=f"svc{i}-vm", priority=10,
                                workload=f"svc{i}", utilization=0.75)
            server.place_vm(vm)
            agent = platform.register_service(
                f"svc{i}", metrics_policy=MetricsTriggerPolicy(
                    start_fraction=0.7, stop_fraction=0.2, consecutive=2))
            platform.attach_vm(f"svc{i}", vm,
                               target_freq_ghz=model.plan.overclock_max_ghz,
                               priority=10)
            services.append(agent)
        return platform, rack, services

    @pytest.fixture(scope="class")
    def scenario(self):
        platform, rack, services = self.build()
        monitor = InvariantMonitor(platform)
        supervisor = platform.supervisors["r0"]
        promoted_at = None
        stale_probe = None
        now = 0.0
        while now < self.DURATION:
            for agent in services:
                agent.observe(now, 8.5, 10.0)  # SLO pressure: overclock
            platform.tick(now, self.TICK)
            monitor.check(now)
            if stale_probe is None \
                    and platform.soas["s0"]._assignment is not None:
                # The old primary's last pre-outage push, held back as
                # the "delayed in flight" replay probe.
                stale_probe = platform.soas["s0"]._assignment
            if promoted_at is None \
                    and supervisor.replicas[1].role == "primary":
                promoted_at = now
            now += self.TICK
        assert platform.lifecycle is not None
        platform.lifecycle.finish(self.DURATION)
        return platform, monitor, supervisor, promoted_at, stale_probe

    def test_takeover_within_one_lease_window(self, scenario):
        platform, _, supervisor, promoted_at, _ = scenario
        assert promoted_at is not None
        assert promoted_at <= self.OUTAGE.start_s \
            + platform.config.goa_lease_s + self.TICK
        assert supervisor.counters.failovers == 1

    def test_returning_primary_steps_down(self, scenario):
        _, _, supervisor, _, _ = scenario
        assert supervisor.counters.stepdowns == 1
        assert supervisor.primary_indices == [1]

    def test_stale_push_is_fenced_and_counted(self, scenario):
        platform, _, _, _, stale_probe = scenario
        soa = platform.soas["s0"]
        assert stale_probe is not None
        assert soa._assignment.epoch > stale_probe.epoch
        before = soa.stale_pushes_rejected
        installed = soa._assignment
        soa.receive_budget_push(stale_probe, now=self.DURATION)
        assert soa.stale_pushes_rejected == before + 1
        assert soa._assignment is installed

    def test_corrupted_checkpoint_cold_starts(self, scenario):
        platform, _, _, _, _ = scenario
        counters = platform.lifecycle.counters
        assert counters.restores_corrupted >= 1
        corrupted = [r for r in platform.lifecycle.restore_reports
                     if r.checkpoint_corrupted]
        assert corrupted and all(r.cold_start for r in corrupted)
        assert all(r.server_id == "s1" for r in corrupted)

    def test_rack_never_exceeds_envelope(self, scenario):
        _, monitor, _, _, _ = scenario
        assert monitor.violations == []
