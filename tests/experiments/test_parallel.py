"""Parallel sweep harness: sharded runs must be byte-identical to serial.

The process-pool tests here spawn real worker processes (the ``spawn``
start method — the same code path the CI perf smoke job uses), so they
are kept small: two racks, two policies, coarse telemetry.
"""

import pytest

from repro.experiments.largescale import (
    compare_policies,
    format_table1,
    table1,
)
from repro.experiments.parallel import resolve_workers, run_rack_policy_jobs
from repro.traces.synthetic import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def small_fleet():
    config = FleetConfig(n_racks=2, weeks=2, seed=21, interval_s=900.0,
                         servers_per_rack_min=5, servers_per_rack_max=5,
                         p99_util_beta=(2.0, 2.0),
                         p99_util_range=(0.85, 0.95))
    return generate_fleet(config)


class TestResolveWorkers:
    def test_none_uses_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestSerialSharding:
    def test_results_keyed_by_rack_and_policy(self, small_fleet):
        merged = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=1)
        assert len(merged) == len(small_fleet.racks)
        for rack, per_policy in zip(small_fleet.racks, merged):
            assert set(per_policy) == {"Central", "SmartOClock"}
            for result in per_policy.values():
                assert result.rack_id == rack.rack_id

    def test_bad_inflight_rejected(self, small_fleet):
        with pytest.raises(ValueError, match="max_inflight"):
            run_rack_policy_jobs(small_fleet.racks, ("Central",),
                                 workers=2, max_inflight=0)


class TestProcessPoolByteIdentity:
    """workers=N must reproduce workers=1 exactly — same counters, same
    floats, same rendered table — regardless of completion order."""

    def test_jobs_identical(self, small_fleet):
        serial = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=1)
        pooled = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=2,
            max_inflight=2)
        assert pooled == serial

    def test_compare_policies_identical(self, small_fleet):
        serial = compare_policies(
            small_fleet, ("NoWarning", "SmartOClock"), workers=1)
        pooled = compare_policies(
            small_fleet, ("NoWarning", "SmartOClock"), workers=2)
        assert pooled == serial

    def test_table1_rendering_identical(self, small_fleet):
        fleets = {"Tiny": small_fleet}
        serial = table1(fleets, workers=1)
        pooled = table1(fleets, workers=2)
        assert pooled == serial
        assert format_table1(pooled) == format_table1(serial)
