"""Parallel sweep harness: sharded runs must be byte-identical to serial.

The process-pool tests here spawn real worker processes (the ``spawn``
start method — the same code path the CI perf smoke job uses), so they
are kept small: two racks, two policies, coarse telemetry.
"""

import os

import numpy as np
import pytest

from repro.experiments.largescale import (
    compare_policies,
    compare_policies_streaming,
    format_table1,
    table1,
)
from repro.experiments.parallel import (
    RackSpec,
    iter_rack_policy_results,
    resolve_workers,
    run_rack_policy_jobs,
)
from repro.traces.synthetic import (
    FleetConfig,
    generate_fleet,
    generate_fleet_rack,
)

SMALL_CONFIG = FleetConfig(n_racks=2, weeks=2, seed=21, interval_s=900.0,
                           servers_per_rack_min=5, servers_per_rack_max=5,
                           p99_util_beta=(2.0, 2.0),
                           p99_util_range=(0.85, 0.95))


@pytest.fixture(scope="module")
def small_fleet():
    return generate_fleet(SMALL_CONFIG)


class TestResolveWorkers:
    def test_none_uses_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)

    def test_none_prefers_affinity_over_cpu_count(self, monkeypatch):
        """cgroup/cpuset-limited CI: the affinity mask (2 usable CPUs)
        must win over the host-wide cpu_count (8)."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_workers(None) == 2

    def test_none_falls_back_to_cpu_count(self, monkeypatch):
        """Platforms without sched_getaffinity use cpu_count."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert resolve_workers(None) == 6

    def test_oserror_falls_back_to_cpu_count(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity")
        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert resolve_workers(None) == 5


class TestSerialSharding:
    def test_results_keyed_by_rack_and_policy(self, small_fleet):
        merged = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=1)
        assert len(merged) == len(small_fleet.racks)
        for rack, per_policy in zip(small_fleet.racks, merged):
            assert set(per_policy) == {"Central", "SmartOClock"}
            for result in per_policy.values():
                assert result.rack_id == rack.rack_id

    def test_bad_inflight_rejected(self, small_fleet):
        with pytest.raises(ValueError, match="max_inflight"):
            run_rack_policy_jobs(small_fleet.racks, ("Central",),
                                 workers=2, max_inflight=0)


class TestProcessPoolByteIdentity:
    """workers=N must reproduce workers=1 exactly — same counters, same
    floats, same rendered table — regardless of completion order."""

    def test_jobs_identical(self, small_fleet):
        serial = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=1)
        pooled = run_rack_policy_jobs(
            small_fleet.racks, ("Central", "SmartOClock"), workers=2,
            max_inflight=2)
        assert pooled == serial

    def test_compare_policies_identical(self, small_fleet):
        serial = compare_policies(
            small_fleet, ("NoWarning", "SmartOClock"), workers=1)
        pooled = compare_policies(
            small_fleet, ("NoWarning", "SmartOClock"), workers=2)
        assert pooled == serial

    def test_table1_rendering_identical(self, small_fleet):
        fleets = {"Tiny": small_fleet}
        serial = table1(fleets, workers=1)
        pooled = table1(fleets, workers=2)
        assert pooled == serial
        assert format_table1(pooled) == format_table1(serial)


def assert_rack_traces_equal(a, b):
    assert a.rack_id == b.rack_id
    assert a.region == b.region
    assert a.power_limit_watts == b.power_limit_watts
    assert len(a.servers) == len(b.servers)
    for sa, sb in zip(a.servers, b.servers):
        assert sa.server_id == sb.server_id
        assert np.array_equal(sa.times, sb.times)
        assert np.array_equal(sa.power_watts, sb.power_watts)
        assert np.array_equal(sa.utilization, sb.utilization)
        assert np.array_equal(sa.oc_cores, sb.oc_cores)


class TestSeedShardedIdentity:
    """The seed-sharding contract: a rack regenerated from
    ``(fleet_seed, rack_index)`` is byte-identical to the rack the
    driver produced inside ``generate_fleet`` — and therefore so is
    every simulation result computed from it, wherever it ran."""

    def test_spec_materializes_driver_rack(self, small_fleet):
        for i, rack in enumerate(small_fleet.racks):
            spec = RackSpec(config=SMALL_CONFIG, rack_index=i)
            assert_rack_traces_equal(spec.materialize(), rack)

    def test_rack_independent_of_fleet_size(self):
        """Rack i's stream must not depend on how many siblings were
        generated before it (the old sequential-rng coupling)."""
        grown = FleetConfig(n_racks=4, weeks=2, seed=21, interval_s=900.0,
                            servers_per_rack_min=5, servers_per_rack_max=5,
                            p99_util_beta=(2.0, 2.0),
                            p99_util_range=(0.85, 0.95))
        assert_rack_traces_equal(generate_fleet_rack(grown, 1),
                                 generate_fleet_rack(SMALL_CONFIG, 1))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="outside fleet"):
            generate_fleet_rack(SMALL_CONFIG, SMALL_CONFIG.n_racks)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("max_inflight", [1, None])
    def test_worker_expansion_matches_driver(self, small_fleet, workers,
                                             max_inflight):
        """Property test of ISSUE 6: sweeping RackSpecs (workers expand
        the traces locally) equals sweeping the driver-materialized
        racks, for every (workers, max_inflight) combination."""
        names = ("Central", "SmartOClock")
        specs = [RackSpec(config=SMALL_CONFIG, rack_index=i)
                 for i in range(SMALL_CONFIG.n_racks)]
        from_specs = run_rack_policy_jobs(specs, names, workers=workers,
                                          max_inflight=max_inflight)
        from_traces = run_rack_policy_jobs(small_fleet.racks, names,
                                           workers=1)
        assert from_specs == from_traces

    @pytest.mark.parametrize("workers", [2, 4])
    def test_streaming_scores_identical(self, small_fleet, workers):
        """The online merge folds in submission-slot order: streaming
        scores are byte-identical to the materialized serial path."""
        names = ("NoWarning", "SmartOClock")
        serial = compare_policies(small_fleet, names, workers=1)
        streamed = compare_policies_streaming(SMALL_CONFIG, names,
                                              workers=workers,
                                              max_inflight=3)
        assert streamed == serial


class TestFailFast:
    """A worker exception must surface promptly and cancel queued jobs
    instead of letting the rest of the grid run to completion."""

    def test_serial_path_raises(self, small_fleet):
        with pytest.raises(KeyError, match="Bogus"):
            run_rack_policy_jobs(small_fleet.racks, ("Central", "Bogus"),
                                 workers=1)

    def test_pool_poisoned_policy_raises(self):
        """Poisoned policy on a multi-rack grid: the sweep dies on the
        first failed job, with queued work cancelled (the sweep would
        take many times longer if the remaining grid ran out)."""
        config = FleetConfig(n_racks=6, weeks=2, seed=7, interval_s=1800.0,
                             servers_per_rack_min=3, servers_per_rack_max=3)
        specs = [RackSpec(config=config, rack_index=i)
                 for i in range(config.n_racks)]
        with pytest.raises(KeyError, match="Bogus"):
            run_rack_policy_jobs(specs, ("Bogus", "Central"), workers=2,
                                 max_inflight=2)

    def test_generator_raises_before_later_slots(self):
        """Consuming the stream: the error arrives as soon as its slot
        would, not after the whole grid."""
        config = FleetConfig(n_racks=4, weeks=2, seed=7, interval_s=1800.0,
                             servers_per_rack_min=3, servers_per_rack_max=3)
        specs = [RackSpec(config=config, rack_index=i)
                 for i in range(config.n_racks)]
        seen = []
        with pytest.raises(KeyError, match="Bogus"):
            for rack_slot, name, _result in iter_rack_policy_results(
                    specs, ("Central", "Bogus"), workers=2,
                    max_inflight=2):
                seen.append((rack_slot, name))
        # Slot order means nothing after the poisoned slot was emitted.
        assert all(name == "Central" for _slot, name in seen)
