"""Tests for the trace-driven large-scale simulation (Table I, Fig. 15)."""

import numpy as np
import pytest

from repro.core.policies import make_policy
from repro.experiments.largescale import (
    cluster_class_fleets,
    compare_policies,
    simulate_rack,
)
from repro.traces.synthetic import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def high_power_fleet():
    config = FleetConfig(n_racks=3, weeks=2, seed=9,
                         servers_per_rack_min=12, servers_per_rack_max=12,
                         p99_util_beta=(2.0, 2.0),
                         p99_util_range=(0.86, 0.96))
    return generate_fleet(config)


@pytest.fixture(scope="module")
def scores(high_power_fleet):
    return compare_policies(high_power_fleet)


class TestSimulateRack:
    def test_result_counters_consistent(self, high_power_fleet):
        rack = high_power_fleet.racks[0]
        result = simulate_rack(rack, make_policy("SmartOClock",
                                                 len(rack.servers)))
        assert result.successful_core_ticks <= result.granted_core_ticks
        assert result.granted_core_ticks <= result.demanded_core_ticks
        assert 0.0 <= result.success_rate <= 1.0
        assert 0.0 <= result.cap_penalty <= 0.5

    def test_policy_size_mismatch_rejected(self, high_power_fleet):
        rack = high_power_fleet.racks[0]
        with pytest.raises(ValueError, match="sized"):
            simulate_rack(rack, make_policy("Central", 3))

    def test_single_week_rejected(self):
        fleet = generate_fleet(FleetConfig(
            n_racks=1, weeks=1, seed=1, servers_per_rack_min=4,
            servers_per_rack_max=4))
        rack = fleet.racks[0]
        with pytest.raises(ValueError, match="2 weeks"):
            simulate_rack(rack, make_policy("Central", len(rack.servers)))

    def test_deterministic(self, high_power_fleet):
        rack = high_power_fleet.racks[0]
        a = simulate_rack(rack, make_policy("SmartOClock",
                                            len(rack.servers)))
        b = simulate_rack(rack, make_policy("SmartOClock",
                                            len(rack.servers)))
        assert a.cap_events == b.cap_events
        assert a.successful_core_ticks == b.successful_core_ticks


class TestTable1Orderings:
    """The qualitative Table-I findings on a small high-power fleet."""

    def test_naive_causes_most_caps(self, scores):
        assert scores["NaiveOClock"].cap_events > \
            scores["SmartOClock"].cap_events
        assert scores["NaiveOClock"].cap_events > \
            scores["NoFeedback"].cap_events

    def test_central_has_fewest_caps(self, scores):
        assert scores["Central"].cap_events <= min(
            s.cap_events for n, s in scores.items() if n != "Central")

    def test_warnings_reduce_caps(self, scores):
        """SmartOClock caps far less than NoWarning (paper: up to 4.3x)."""
        assert scores["SmartOClock"].cap_events < \
            scores["NoWarning"].cap_events

    def test_central_has_best_success(self, scores):
        assert scores["Central"].success_rate == max(
            s.success_rate for s in scores.values())

    def test_smartoclock_beats_naive_and_nofeedback(self, scores):
        assert scores["SmartOClock"].success_rate > \
            scores["NaiveOClock"].success_rate
        assert scores["SmartOClock"].success_rate > \
            scores["NoFeedback"].success_rate

    def test_performance_tracks_success(self, scores):
        assert scores["SmartOClock"].normalized_performance > \
            scores["NaiveOClock"].normalized_performance
        assert scores["Central"].normalized_performance <= 4.0 / 3.3

    def test_naive_penalty_largest(self, scores):
        others = max(s.cap_penalty for n, s in scores.items()
                     if n not in ("NaiveOClock",))
        assert scores["NaiveOClock"].cap_penalty >= others


class TestCappingAblation:
    def test_fair_share_penalty_exceeds_prioritized(self, high_power_fleet):
        """§V-B: heterogeneous/prioritized capping reduces the penalty on
        non-overclocked VMs (paper: 1.62-1.72x)."""
        penalties = {}
        for mode in ("heterogeneous", "fair"):
            values = []
            for rack in high_power_fleet.racks:
                policy = make_policy("SmartOClock", len(rack.servers))
                policy.capping_mode = mode
                result = simulate_rack(rack, policy)
                if result.noc_penalty_events:
                    values.append(result.cap_penalty)
            penalties[mode] = float(np.mean(values)) if values else 0.0
        assert penalties["fair"] > penalties["heterogeneous"]


class TestClusterClasses:
    def test_three_classes_generated(self):
        fleets = cluster_class_fleets(n_racks=2, weeks=2, seed=3)
        assert set(fleets) == {"High-Power", "Medium-Power", "Low-Power"}

    def test_class_utilizations_ordered(self):
        fleets = cluster_class_fleets(n_racks=2, weeks=2, seed=3)
        means = {}
        for name, fleet in fleets.items():
            stats = fleet.rack_utilization_stats()
            means[name] = float(np.mean(stats["p99"]))
        assert means["High-Power"] > means["Medium-Power"] > \
            means["Low-Power"]
