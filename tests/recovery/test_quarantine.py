"""QuarantineController: crash-window trips, cooldowns, wear floor."""

import pytest

from repro.core.config import SmartOClockConfig
from repro.recovery.quarantine import QuarantineController, QuarantinePolicy


class TestPolicyValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError, match="crash_threshold"):
            QuarantinePolicy(crash_threshold=0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="crash_window_s"):
            QuarantinePolicy(crash_window_s=0.0)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError, match="cooldown_s"):
            QuarantinePolicy(cooldown_s=-1.0)

    def test_from_config_maps_all_knobs(self):
        config = SmartOClockConfig(
            quarantine_crash_threshold=3, quarantine_window_s=600.0,
            quarantine_cooldown_s=120.0, quarantine_wear_floor_s=90.0)
        policy = QuarantinePolicy.from_config(config)
        assert policy == QuarantinePolicy(
            crash_threshold=3, crash_window_s=600.0,
            cooldown_s=120.0, wear_floor_s=90.0)


class TestCrashTrigger:
    def controller(self, **kwargs):
        defaults = dict(crash_threshold=2, crash_window_s=1000.0,
                        cooldown_s=500.0)
        defaults.update(kwargs)
        return QuarantineController(policy=QuarantinePolicy(**defaults))

    def test_single_crash_below_threshold(self):
        controller = self.controller()
        assert not controller.record_crash("s0", 100.0)
        assert not controller.active("s0", 100.0)
        assert controller.release_at("s0") is None
        assert controller.quarantines == 0

    def test_repeated_crashes_within_window_trip(self):
        controller = self.controller()
        controller.record_crash("s0", 100.0)
        assert controller.record_crash("s0", 300.0)
        assert controller.active("s0", 300.0)
        assert controller.release_at("s0") == 800.0  # 300 + cooldown
        assert controller.quarantines == 1

    def test_crashes_outside_window_do_not_trip(self):
        controller = self.controller()
        controller.record_crash("s0", 100.0)
        assert not controller.record_crash("s0", 2000.0)  # first aged out
        assert not controller.active("s0", 2000.0)

    def test_cooldown_expires(self):
        controller = self.controller()
        controller.record_crash("s0", 0.0)
        controller.record_crash("s0", 10.0)
        assert controller.active("s0", 509.0)
        assert not controller.active("s0", 510.0)

    def test_retrip_extends_release(self):
        controller = self.controller()
        controller.record_crash("s0", 0.0)
        controller.record_crash("s0", 10.0)       # release at 510
        controller.record_crash("s0", 100.0)      # release at 600
        assert controller.release_at("s0") == 600.0
        assert controller.quarantines == 2

    def test_servers_are_independent(self):
        controller = self.controller()
        controller.record_crash("s0", 0.0)
        controller.record_crash("s0", 10.0)
        assert controller.active("s0", 20.0)
        assert not controller.active("s1", 20.0)


class TestWearTrigger:
    def test_disabled_by_default(self):
        controller = QuarantineController()
        assert not controller.check_wear("s0", 0.0, 100.0)
        assert not controller.active("s0", 100.0)

    def test_floor_breach_quarantines(self):
        policy = QuarantinePolicy(wear_floor_s=60.0, cooldown_s=500.0)
        controller = QuarantineController(policy=policy)
        assert not controller.check_wear("s0", 61.0, 100.0)
        assert controller.check_wear("s0", 59.0, 100.0)
        assert controller.release_at("s0") == 600.0

    def test_no_double_quarantine_while_active(self):
        policy = QuarantinePolicy(wear_floor_s=60.0, cooldown_s=500.0)
        controller = QuarantineController(policy=policy)
        assert controller.check_wear("s0", 0.0, 100.0)
        assert not controller.check_wear("s0", 0.0, 200.0)
        assert controller.quarantines == 1
