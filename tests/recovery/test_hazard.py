"""HazardModel: wear/voltage-driven failure rates."""

import math

import pytest

from repro.reliability.hazard import (
    DEFAULT_HAZARD_MODEL,
    SECONDS_PER_YEAR,
    HazardModel,
)


class TestValidation:
    def test_rejects_negative_base_rate(self):
        with pytest.raises(ValueError, match="base_failures_per_year"):
            HazardModel(base_failures_per_year=-1.0)
        # Zero is legal: it disables the hazard entirely.
        assert HazardModel(base_failures_per_year=0.0) \
            .tick_failure_probability(5.0, 1.75, 10.0) == 0.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="voltage_weight"):
            HazardModel(voltage_weight=-1.0)
        with pytest.raises(ValueError, match="wear_coupling"):
            HazardModel(wear_coupling=-0.5)


class TestFailureRate:
    def test_reference_point_matches_base_rate(self):
        model = HazardModel(base_failures_per_year=2.0)
        ref = model.aging.reference_volts
        assert model.failure_rate_per_s(0.0, ref) == \
            pytest.approx(2.0 / SECONDS_PER_YEAR)

    def test_monotone_in_voltage(self):
        model = DEFAULT_HAZARD_MODEL
        ref = model.aging.reference_volts
        rates = [model.failure_rate_per_s(0.5, ref + dv)
                 for dv in (0.0, 0.2, 0.5, 0.7)]
        assert rates == sorted(rates)
        assert rates[-1] > rates[0]

    def test_monotone_in_wear(self):
        model = HazardModel(wear_coupling=2.0)
        volts = model.aging.reference_volts
        rates = [model.failure_rate_per_s(w, volts)
                 for w in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert rates == sorted(rates)
        # Wear below the reference rate is not penalized...
        assert rates[0] == rates[2]
        # ...but burning lifetime is.
        assert rates[3] > rates[2]

    def test_voltage_weight_sharpens_acceleration(self):
        volts = DEFAULT_HAZARD_MODEL.aging.reference_volts + 0.7
        flat = HazardModel(voltage_weight=1.0)
        sharp = HazardModel(voltage_weight=2.0)
        ratio = (sharp.failure_rate_per_s(0.0, volts)
                 / flat.failure_rate_per_s(0.0, volts))
        accel = flat.aging.voltage_acceleration(volts)
        assert ratio == pytest.approx(accel)


class TestTickProbability:
    def test_probability_bounds(self):
        model = HazardModel(base_failures_per_year=1e9)
        prob = model.tick_failure_probability(10.0, 1.75, 10.0)
        assert 0.0 <= prob <= 1.0

    def test_matches_exponential_cdf(self):
        model = HazardModel(base_failures_per_year=50.0)
        volts = model.aging.reference_volts + 0.3
        rate = model.failure_rate_per_s(0.8, volts)
        prob = model.tick_failure_probability(0.8, volts, 10.0)
        assert prob == pytest.approx(1.0 - math.exp(-rate * 10.0))

    def test_zero_dt_never_fails(self):
        assert DEFAULT_HAZARD_MODEL.tick_failure_probability(
            5.0, 1.75, 0.0) == 0.0

    def test_rejects_negative_dt(self):
        with pytest.raises(ValueError, match="dt"):
            DEFAULT_HAZARD_MODEL.tick_failure_probability(0.0, 1.05, -1.0)
