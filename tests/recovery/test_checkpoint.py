"""Checkpoint/restore of sOA durable state: store semantics, grant
revocation rules, stale-margin re-derivation, and the bit-identical
round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.recovery.checkpoint import (
    DurableStore,
    GoaCheckpoint,
    RestoreReport,
    SoaCheckpoint,
)

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz
WEEK = 7 * 24 * 3600.0


def build(config=None, n_servers=3, rack_limit=3000.0):
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    return SmartOClockPlatform(dc, config=config), servers


def overclocked_platform(config=None, utilization=0.8):
    """A platform whose s0 holds one active grant after the first tick."""
    platform, servers = build(config=config)
    vm = VirtualMachine(8, utilization=utilization)
    servers[0].place_vm(vm)
    service = platform.register_service(
        "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
    platform.attach_vm("svc", vm)
    service.observe(0.0, 9.5, 10.0)
    platform.tick(10.0, dt=10.0)
    soa = platform.soas["s0"]
    assert soa.is_overclocking(vm.vm_id)
    return platform, soa, vm


def checkpoint(server_id="s0", taken_at=100.0, marker=1.0):
    return SoaCheckpoint(server_id=server_id, taken_at=taken_at,
                         payload={"marker": marker})


class TestDurableStore:
    def test_save_load_roundtrip(self):
        store = DurableStore()
        assert not store.has_checkpoint("s0")
        assert store.load("s0") is None
        assert store.checkpoints_loaded == 0  # misses are not loads
        cp = checkpoint()
        store.save(cp)
        assert store.has_checkpoint("s0")
        assert store.load("s0") is cp
        assert store.checkpoints_saved == 1
        assert store.checkpoints_loaded == 1

    def test_latest_checkpoint_wins(self):
        store = DurableStore()
        store.save(checkpoint(taken_at=100.0, marker=1.0))
        newer = checkpoint(taken_at=200.0, marker=2.0)
        store.save(newer)
        assert store.load("s0") is newer
        assert store.checkpoints_saved == 2

    def test_servers_do_not_share_slots(self):
        store = DurableStore()
        store.save(checkpoint("s0"))
        assert not store.has_checkpoint("s1")


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert checkpoint().fingerprint() == checkpoint().fingerprint()

    def test_payload_sensitivity(self):
        assert checkpoint(marker=1.0).fingerprint() != \
            checkpoint(marker=2.0).fingerprint()

    def test_timestamp_sensitivity(self):
        assert checkpoint(taken_at=1.0).fingerprint() != \
            checkpoint(taken_at=2.0).fingerprint()


class TestRestoreReport:
    def report(self, **kwargs):
        defaults = dict(server_id="s0", restored_at=10.0,
                        checkpoint_taken_at=5.0, grants_kept=0,
                        grants_revoked=0, assignment_age_s=None,
                        stale_margin=0.0, checkpoint_budget_watts=None,
                        restored_budget_watts=None)
        defaults.update(kwargs)
        return RestoreReport(**defaults)

    def test_cold_start(self):
        assert self.report(checkpoint_taken_at=None).cold_start
        assert not self.report().cold_start

    def test_overgranted_requires_budget_excess(self):
        assert not self.report().overgranted  # no budgets restored
        assert not self.report(checkpoint_budget_watts=100.0,
                               restored_budget_watts=95.0).overgranted
        assert self.report(checkpoint_budget_watts=100.0,
                           restored_budget_watts=100.1).overgranted


class TestCorruptionDetection:
    def corrupting(self, when=lambda key, taken_at: True):
        return DurableStore(corruption_hook=when)

    def test_healthy_load_verified_is_identity(self):
        store = DurableStore()
        cp = checkpoint()
        store.save(cp)
        load = store.load_verified("s0")
        assert load.checkpoint is cp
        assert not load.corrupted
        assert store.checkpoints_loaded == 1
        assert store.corruption_detected == 0

    def test_corrupted_save_fails_verification(self):
        store = self.corrupting()
        store.save(checkpoint())
        assert store.checkpoints_saved == 1
        assert store.checkpoints_corrupted == 1
        load = store.load_verified("s0")
        assert load.checkpoint is None
        assert load.corrupted
        assert store.corruption_detected == 1
        assert store.checkpoints_loaded == 0  # a failed load is not a load
        # The convenience loader agrees: corrupted reads as missing.
        assert store.load("s0") is None

    def test_missing_is_not_corrupted(self):
        load = DurableStore().load_verified("s0")
        assert load.checkpoint is None and not load.corrupted

    def test_selective_corruption_spares_other_keys(self):
        store = self.corrupting(lambda key, taken_at: key == "s0")
        store.save(checkpoint("s0"))
        store.save(checkpoint("s1"))
        assert store.load_verified("s0").corrupted
        clean = store.load_verified("s1")
        assert clean.checkpoint is not None and not clean.corrupted

    def test_newer_clean_save_replaces_corrupted_one(self):
        toggle = [True]
        store = self.corrupting(lambda key, taken_at: toggle[0])
        store.save(checkpoint(taken_at=100.0))
        toggle[0] = False
        good = checkpoint(taken_at=200.0, marker=2.0)
        store.save(good)
        load = store.load_verified("s0")
        assert load.checkpoint is good and not load.corrupted


class TestGoaCheckpoints:
    def goa_checkpoint(self, rack_id="r0", epoch=3):
        return GoaCheckpoint(rack_id=rack_id, taken_at=50.0,
                             payload={"epoch": epoch})

    def test_goa_key_namespace(self):
        assert DurableStore.goa_key("r0") == "goa:r0"

    def test_save_load_roundtrip(self):
        store = DurableStore()
        cp = self.goa_checkpoint()
        store.save_goa(cp)
        load = store.load_goa("r0")
        assert load.checkpoint is cp and not load.corrupted
        assert store.load_goa("r1").checkpoint is None

    def test_goa_keys_do_not_collide_with_server_ids(self):
        store = DurableStore()
        store.save(checkpoint("r0"))  # a server named like a rack
        store.save_goa(self.goa_checkpoint("r0"))
        assert isinstance(store.load("r0"), SoaCheckpoint)
        assert isinstance(store.load_goa("r0").checkpoint, GoaCheckpoint)

    def test_corrupted_goa_checkpoint_detected(self):
        store = DurableStore(
            corruption_hook=lambda key, taken_at: key.startswith("goa:"))
        store.save_goa(self.goa_checkpoint())
        load = store.load_goa("r0")
        assert load.checkpoint is None and load.corrupted
        assert store.corruption_detected == 1


class TestSoaRestore:
    def test_valid_grant_survives_restart(self):
        platform, soa, vm = overclocked_platform()
        cp = soa.build_checkpoint(10.0)
        soa.crash(15.0)
        assert not soa.alive and soa.active_grants == 0
        report = soa.restart(20.0, cp)
        assert soa.alive
        assert report.grants_kept == 1 and report.grants_revoked == 0
        assert soa.is_overclocking(vm.vm_id)
        assert vm.freq_ghz > TURBO

    def test_unprovable_naive_grant_is_revoked(self):
        # NaiveOClock grants carry no deadline (granted_until=None): a
        # restored ledger cannot prove them valid, so they are revoked
        # and the VM is forced back to turbo.
        naive = SmartOClockConfig().as_naive()
        platform, soa, vm = overclocked_platform(config=naive)
        cp = soa.build_checkpoint(10.0)
        soa.crash(15.0)
        report = soa.restart(20.0, cp)
        assert report.grants_kept == 0 and report.grants_revoked == 1
        assert not soa.is_overclocking(vm.vm_id)
        assert vm.freq_ghz == TURBO

    def test_grant_for_departed_vm_is_revoked(self):
        platform, soa, vm = overclocked_platform()
        cp = soa.build_checkpoint(10.0)
        soa.crash(15.0)
        soa.server.remove_vm(vm)
        report = soa.restart(20.0, cp)
        assert report.grants_kept == 0 and report.grants_revoked == 1

    def test_expired_grant_is_revoked(self):
        platform, soa, vm = overclocked_platform()
        cp = soa.build_checkpoint(10.0)
        soa.crash(15.0)
        deadline = cp.payload["grants"][str(vm.vm_id)]["granted_until"]
        report = soa.restart(deadline + 1.0, cp)
        assert report.grants_kept == 0 and report.grants_revoked == 1
        assert vm.freq_ghz == TURBO

    def test_cold_start_without_checkpoint(self):
        platform, soa, vm = overclocked_platform()
        soa.crash(15.0)
        report = soa.restart(20.0, None)
        assert report.cold_start
        assert soa.alive and soa.active_grants == 0
        assert soa._assignment is None

    def test_restart_clears_stale_quarantine_projection(self):
        platform, soa, vm = overclocked_platform()
        soa.quarantined_until = 1e9
        soa.crash(15.0)
        soa.restart(20.0, None)
        # The risk controller re-imposes real quarantines; a restart must
        # not resurrect the cached projection on its own.
        assert soa.quarantined_until is None

    def test_restored_assignment_rederives_stale_margin(self):
        platform, soa, vm = overclocked_platform()
        assignment = platform.goas["r0"].recompute_budgets(10.0)
        assert assignment is not None
        cp = soa.build_checkpoint(10.0)
        soa.crash(15.0)
        # The outage outlasts the staleness grace: the assignment comes
        # back pre-derated, never above the checkpointed budget.
        restore_at = 10.0 + 2.0 * WEEK
        report = soa.restart(restore_at, cp)
        assert report.assignment_age_s == pytest.approx(2.0 * WEEK)
        assert report.stale_margin > 0.0
        assert report.checkpoint_budget_watts is not None
        assert report.restored_budget_watts is not None
        assert report.restored_budget_watts < report.checkpoint_budget_watts
        assert not report.overgranted


class TestRoundTripProperty:
    @given(n_ticks=st.integers(min_value=1, max_value=25),
           utilization=st.floats(min_value=0.2, max_value=1.0),
           overclock=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_checkpoint_restore_checkpoint_bit_identical(
            self, n_ticks, utilization, overclock):
        platform, servers = build()
        vm = VirtualMachine(8, utilization=utilization)
        servers[0].place_vm(vm)
        service = platform.register_service(
            "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
        platform.attach_vm("svc", vm)
        if overclock:
            service.observe(0.0, 9.5, 10.0)
        now = 0.0
        for i in range(n_ticks):
            now = i * 10.0
            platform.tick(now, dt=10.0)
        soa = platform.soas["s0"]
        before = soa.build_checkpoint(now)
        soa.crash(now)
        soa.restart(now, before)
        after = soa.build_checkpoint(now)
        assert before.payload == after.payload
        assert before.fingerprint() == after.fingerprint()
