"""ServerLifecycleManager: forced crashes, hazard crashes, evacuation,
quarantine enforcement, sOA process restarts, and gOA membership."""

import pytest

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.platform import SmartOClockPlatform
from repro.core.types import RejectionReason
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.faults.injector import FaultInjector
from repro.faults.spec import (
    CheckpointCorruptionFault,
    FaultPlan,
    ServerCrashFault,
    SoaRestart,
    window,
)
from repro.recovery.lifecycle import ServerLifecycleManager
from repro.reliability.hazard import HazardModel

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz

# Hazard so small it never fires in a short run: keeps the lifecycle
# manager attached without perturbing the scenario under test.
NULL_HAZARD = HazardModel(base_failures_per_year=1e-12)


def build(n_servers=3, rack_limit=3000.0, plan=None, hazard=None, seed=7):
    rack = Rack("r0", rack_limit)
    servers = [Server(f"s{i}", DEFAULT_POWER_MODEL)
               for i in range(n_servers)]
    for s in servers:
        rack.add_server(s)
    dc = Datacenter()
    dc.add_rack(rack)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan=plan, seed=seed)
    platform = SmartOClockPlatform(dc, fault_injector=injector,
                                   hazard_model=hazard, recovery_seed=seed)
    return platform, servers


def attach(platform, servers, index=0, n_cores=4, utilization=0.5):
    vm = VirtualMachine(n_cores, utilization=utilization)
    servers[index].place_vm(vm)
    platform.register_service(
        "svc", metrics_policy=MetricsTriggerPolicy(consecutive=1))
    local = platform.attach_vm("svc", vm)
    return vm, local


def run(platform, end_s, tick_s=10.0):
    now = 0.0
    while now <= end_s:
        platform.tick(now, dt=tick_s)
        now += tick_s


class TestForcedCrash:
    @pytest.fixture()
    def scenario(self):
        plan = FaultPlan(server_crashes=(
            ServerCrashFault(window(100.0, 110.0), server_id="s0"),))
        platform, servers = build(plan=plan)
        vm, local = attach(platform, servers)
        return platform, servers, vm, local

    def test_crash_takes_server_down_and_back(self, scenario):
        platform, servers, vm, local = scenario
        run(platform, 90.0)
        assert not servers[0].offline
        run_from = 100.0
        platform.tick(run_from, dt=10.0)  # the crash tick
        soa = platform.soas["s0"]
        assert servers[0].offline
        assert not soa.alive
        assert servers[0].power_watts() == 0.0
        assert vm.vm_id not in servers[0].vms
        # Recovery: forced window end (110) < crash + restart delay (220).
        for now in range(110, 231, 10):
            platform.tick(float(now), dt=10.0)
        assert not servers[0].offline
        assert soa.alive

    def test_vm_evacuates_to_same_rack_survivor(self, scenario):
        platform, servers, vm, local = scenario
        run(platform, 170.0)
        # Placed again after vm_restart_delay_s (60): on s1 or s2.
        hosts = [s.server_id for s in servers if vm.vm_id in s.vms]
        assert hosts and hosts[0] in ("s1", "s2")
        # The Local WI agent follows its VM to the new sOA.
        assert local.soa.server.server_id == hosts[0]

    def test_downtime_and_counters(self, scenario):
        platform, servers, vm, local = scenario
        run(platform, 400.0)
        lifecycle = platform.lifecycle
        lifecycle.finish(400.0)
        assert lifecycle.server_downtime.downtime_s("s0") == \
            pytest.approx(120.0)  # 100 → 220 (crash + restart delay)
        assert lifecycle.vm_downtime.total_downtime_s == pytest.approx(60.0)
        counters = lifecycle.counters
        assert counters.server_crashes == 1
        assert counters.forced_crashes == 1
        assert counters.hazard_crashes == 0
        assert counters.vms_evacuated == 1
        assert counters.server_restarts == 1
        assert counters.soa_restarts == 1
        assert counters.restores_from_checkpoint == 1  # checkpoint at t=0

    def test_rack_power_consistent_while_server_offline(self, scenario):
        platform, servers, vm, local = scenario
        run(platform, 150.0)
        rack = platform.datacenter.racks["r0"]
        assert servers[0].offline
        assert rack.power_watts() == \
            pytest.approx(rack.recompute_power_watts())


class TestQuarantine:
    @pytest.fixture()
    def scenario(self):
        # Two forced crashes on the rack's only server: the second trips
        # the default policy (2 crashes within 3600 s → 1800 s cooldown).
        plan = FaultPlan(server_crashes=(
            ServerCrashFault(window(100.0, 110.0), server_id="s0"),
            ServerCrashFault(window(300.0, 310.0), server_id="s0")))
        platform, servers = build(n_servers=1, plan=plan)
        vm, local = attach(platform, servers)
        run(platform, 430.0)
        return platform, servers, vm, local

    def test_single_server_rack_retries_until_self_recovers(self, scenario):
        platform, servers, vm, local = scenario
        # No same-rack donor exists: the placer retries until the crashed
        # server itself comes back, then the VM lands on it again.
        assert platform.lifecycle.counters.evacuation_retries >= 1
        assert vm.vm_id in servers[0].vms

    def test_repeat_offender_blocked_until_cooldown(self, scenario):
        platform, servers, vm, local = scenario
        soa = platform.soas["s0"]
        assert soa.alive
        assert soa.quarantined_until == pytest.approx(2100.0)  # 300 + 1800
        decision = local.start(430.0)
        assert not decision.granted
        assert decision.reason is RejectionReason.QUARANTINED
        assert soa.requests_rejected_quarantine == 1
        assert platform.grant_statistics()["rejected_quarantine"] == 1
        assert platform.fault_counters()["quarantines"] == 1

    def test_grants_resume_after_cooldown(self, scenario):
        platform, servers, vm, local = scenario
        decision = local.start(2150.0)
        assert decision.granted


class TestHazardCrash:
    def test_certain_hazard_kills_every_server(self):
        platform, servers = build(
            hazard=HazardModel(base_failures_per_year=1e12), seed=3)
        platform.tick(0.0, dt=10.0)
        assert all(s.offline for s in servers)
        counters = platform.lifecycle.counters
        assert counters.hazard_crashes == 3
        assert counters.forced_crashes == 0
        merged = platform.fault_counters()
        assert merged["server_crashes"] == 3
        assert merged["messages_dropped"] == 0  # injector keys present

    def test_crash_draw_deterministic_per_event(self):
        platform, _ = build(hazard=NULL_HAZARD, seed=11)
        again, _ = build(hazard=NULL_HAZARD, seed=11)
        other, _ = build(hazard=NULL_HAZARD, seed=12)
        draw = platform.lifecycle._crash_draw("s0", 100.0, 0.5)
        assert draw == again.lifecycle._crash_draw("s0", 100.0, 0.5)
        draws = {seed: p.lifecycle._crash_draw("s0", 100.0, 0.5)
                 for seed, p in ((11, platform), (12, other))}
        assert isinstance(draws[12], bool)  # may or may not match seed 11
        assert platform.lifecycle._crash_draw("s0", 100.0, 0.0) is False
        assert platform.lifecycle._crash_draw("s0", 100.0, 1.0) is True


class TestSoaProcessRestart:
    def test_soa_dies_and_restores_with_server_up(self):
        plan = FaultPlan(soa_restarts=(
            SoaRestart(at_s=50.0, server_id="s0"),))
        platform, servers = build(n_servers=2, plan=plan)
        run(platform, 60.0)
        soa = platform.soas["s0"]
        assert not soa.alive
        assert not servers[0].offline           # the *server* never died
        assert servers[0].power_watts() > 0.0
        run_from = 70.0
        while run_from <= 90.0:
            platform.tick(run_from, dt=10.0)
            run_from += 10.0
        assert soa.alive                         # restored after 30 s
        counters = platform.lifecycle.counters
        assert counters.soa_restarts == 1
        assert counters.server_crashes == 0
        assert counters.server_restarts == 0
        assert counters.restores_from_checkpoint == 1


class TestCorruptedRestore:
    def test_corrupted_checkpoint_cold_starts_and_is_audited(self):
        plan = FaultPlan(
            soa_restarts=(SoaRestart(at_s=50.0, server_id="s0"),),
            checkpoint_corruptions=(CheckpointCorruptionFault(
                window(0.0, 1000.0), corrupt_prob=1.0, server_id="s0"),))
        platform, servers = build(n_servers=2, plan=plan)
        run(platform, 90.0)
        soa = platform.soas["s0"]
        assert soa.alive                         # restarted regardless
        counters = platform.lifecycle.counters
        assert counters.soa_restarts == 1
        assert counters.restores_from_checkpoint == 0
        assert counters.restores_cold == 1       # fell back to cold start
        assert counters.restores_corrupted == 1
        report = platform.lifecycle.restore_reports[-1]
        assert report.checkpoint_corrupted
        assert report.cold_start
        merged = platform.fault_counters()
        assert merged["checkpoints_corrupted"] >= 1
        assert merged["checkpoint_corruption_detected"] == 1

    def test_clean_checkpoints_unaffected_by_other_servers_fault(self):
        plan = FaultPlan(
            soa_restarts=(SoaRestart(at_s=50.0, server_id="s1"),),
            checkpoint_corruptions=(CheckpointCorruptionFault(
                window(0.0, 1000.0), corrupt_prob=1.0, server_id="s0"),))
        platform, servers = build(n_servers=2, plan=plan)
        run(platform, 90.0)
        counters = platform.lifecycle.counters
        assert counters.restores_from_checkpoint == 1
        assert counters.restores_corrupted == 0
        assert not platform.lifecycle.restore_reports[-1].checkpoint_corrupted


class TestCheckpointCadence:
    def test_checkpoints_taken_on_interval(self):
        platform, servers = build(hazard=NULL_HAZARD)
        run(platform, 600.0)
        lifecycle = platform.lifecycle
        # Cadence 300 s, 3 alive servers: t = 0, 300, 600.
        assert lifecycle.counters.checkpoints_taken == 9
        for sid in ("s0", "s1", "s2"):
            assert lifecycle.store.has_checkpoint(sid)


class TestGoaMembership:
    def test_dead_soa_marked_and_budget_redistributed(self):
        platform, servers = build(hazard=NULL_HAZARD)
        for i in range(5):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1200.0)
        goa = platform.goas["r0"]
        assert goa.assignment is not None
        assert "s0" in goa.assignment.budgets
        platform.soas["s0"].crash(1250.0)
        platform.force_budget_update(1500.0)     # miss 1
        platform.force_budget_update(1800.0)     # miss 2 → dead
        assert goa.dead_servers == ["s0"]
        assert goa.servers_marked_dead == 1
        assert "s0" not in goa.assignment.budgets
        assert set(goa.assignment.budgets) == {"s1", "s2"}
        merged = platform.fault_counters()
        assert merged["servers_marked_dead"] == 1

    def test_restored_soa_revives_membership(self):
        platform, servers = build(hazard=NULL_HAZARD)
        for i in range(5):
            platform.tick(i * 300.0, dt=300.0)
        platform.force_budget_update(1200.0)
        platform.soas["s0"].crash(1250.0)
        platform.force_budget_update(1500.0)
        platform.force_budget_update(1800.0)
        goa = platform.goas["r0"]
        assert goa.dead_servers == ["s0"]
        platform.soas["s0"].restart(2000.0, None)
        platform.force_budget_update(2100.0)
        assert goa.dead_servers == []
        assert goa.servers_revived == 1
        assert "s0" in goa.assignment.budgets
