"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.racks == 30
        assert args.seed == 1

    @pytest.mark.parametrize("command", ["chaos", "recovery", "faults",
                                         "oversub"])
    def test_sweep_commands_take_workers(self, command):
        # Every sweep/matched-run command shards over the spawn pool;
        # the serial default keeps single runs pool-free.
        assert build_parser().parse_args([command]).workers == 1
        args = build_parser().parse_args([command, "--workers", "4"])
        assert args.workers == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "cluster" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "Service A" in capsys.readouterr().out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--racks", "4"]) == 0
        out = capsys.readouterr().out
        assert "P99" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--days", "2"]) == 0
        assert "days of wear" in capsys.readouterr().out

    def test_fig16_fig17(self, capsys):
        assert main(["fig16"]) == 0
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "%" in out

    def test_fig15_small(self, capsys):
        assert main(["fig15", "--racks", "2"]) == 0
        assert "DailyMed" in capsys.readouterr().out

    def test_table1_small_serial(self, capsys):
        assert main(["table1", "--racks", "1", "--weeks", "2",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "High-Power" in out and "SmartOClock" in out


class TestNumericValidation:
    """Out-of-domain numeric args exit with argparse's usage error
    (code 2), not a traceback from deep inside trace generation or
    pool setup."""

    @pytest.mark.parametrize("argv", [
        ["table1", "--racks", "0"],
        ["table1", "--weeks", "1"],
        ["table1", "--workers", "0"],
        ["table1", "--max-inflight", "0"],
        ["table1", "--seed", "-3"],
        ["table1", "--racks", "many"],
        ["fig5", "--racks", "0"],
        ["fig5", "--seed", "-1"],
        ["fig15", "--racks", "-2"],
        ["fig15", "--seed", "-1"],
        ["chaos", "--workers", "0"],
        ["chaos", "--trials", "0"],
        ["recovery", "--workers", "-1"],
        ["faults", "--workers", "0"],
        ["oversub", "--workers", "0"],
    ])
    def test_rejected_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_valid_boundaries_accepted(self):
        args = build_parser().parse_args(
            ["table1", "--racks", "1", "--weeks", "2", "--workers", "1",
             "--max-inflight", "1", "--seed", "0"])
        assert (args.racks, args.weeks, args.workers,
                args.max_inflight, args.seed) == (1, 2, 1, 1, 0)
