"""Tests for periodic tasks and scheduling helpers."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.events import PeriodicTask, at_times


class TestPeriodicTask:
    def test_fires_every_interval(self):
        engine = SimulationEngine()
        times = []
        PeriodicTask(engine, 10.0, lambda: times.append(engine.now))
        engine.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_fire_immediately(self):
        engine = SimulationEngine()
        times = []
        PeriodicTask(engine, 10.0, lambda: times.append(engine.now),
                     fire_immediately=True)
        engine.run(until=25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_max_firings(self):
        engine = SimulationEngine()
        times = []
        task = PeriodicTask(engine, 1.0, lambda: times.append(engine.now),
                            max_firings=3)
        engine.run(until=100.0)
        assert times == [1.0, 2.0, 3.0]
        assert task.firings == 3

    def test_stop_cancels_pending(self):
        engine = SimulationEngine()
        times = []
        task = PeriodicTask(engine, 10.0, lambda: times.append(engine.now))
        engine.run(until=15.0)
        task.stop()
        engine.run(until=100.0)
        assert times == [10.0]
        assert task.stopped

    def test_stop_from_within_callback(self):
        engine = SimulationEngine()
        count = [0]

        def callback():
            count[0] += 1
            if count[0] == 2:
                task.stop()

        task = PeriodicTask(engine, 1.0, callback)
        engine.run(until=50.0)
        assert count[0] == 2

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PeriodicTask(SimulationEngine(), 0.0, lambda: None)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PeriodicTask(SimulationEngine(), -5.0, lambda: None)


class TestAtTimes:
    def test_callback_receives_each_time(self):
        engine = SimulationEngine()
        seen = []
        at_times(engine, [1.0, 3.0, 7.0], seen.append)
        engine.run()
        assert seen == [1.0, 3.0, 7.0]

    def test_returns_cancellable_handles(self):
        engine = SimulationEngine()
        seen = []
        events = at_times(engine, [1.0, 2.0, 3.0], seen.append)
        events[1].cancel()
        engine.run()
        assert seen == [1.0, 3.0]

    def test_empty_times(self):
        engine = SimulationEngine()
        assert at_times(engine, [], lambda t: None) == []
