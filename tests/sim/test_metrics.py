"""Tests for metric collectors (percentiles, CDFs, RMSE, integrals)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    Cdf,
    Histogram,
    RunningStats,
    TimeWeightedValue,
    empirical_quantile,
    mean_absolute_error,
    percentile,
    rmse,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_min_and_max(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_matches_numpy(self, values):
        assert percentile(values, 99) == pytest.approx(
            float(np.percentile(values, 99)))


class TestRmse:
    def test_zero_for_identical(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # errors 3 and 4 -> sqrt((9+16)/2)
        assert rmse([3.0, 4.0], [0.0, 0.0]) == pytest.approx(
            math.sqrt(12.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            rmse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30))
    def test_rmse_at_least_mae(self, values):
        zeros = [0.0] * len(values)
        assert rmse(values, zeros) >= mean_absolute_error(
            values, zeros) - 1e-9


class TestRunningStats:
    def test_mean_and_count(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)

    def test_variance_population(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_min_max(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            _ = stats.mean
        with pytest.raises(ValueError):
            _ = stats.variance
        with pytest.raises(ValueError):
            _ = stats.minimum

    @given(st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(float(np.mean(values)),
                                           rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(float(np.var(values)),
                                               rel=1e-6, abs=1e-6)


class TestTimeWeightedValue:
    def test_integral_of_constant(self):
        tw = TimeWeightedValue(0.0, initial_value=5.0)
        tw.finish(10.0)
        assert tw.integral == pytest.approx(50.0)
        assert tw.average == pytest.approx(5.0)

    def test_piecewise_signal(self):
        tw = TimeWeightedValue(0.0, initial_value=1.0)
        tw.update(2.0, 3.0)   # 1.0 for 2s
        tw.update(5.0, 0.0)   # 3.0 for 3s
        tw.finish(10.0)       # 0.0 for 5s
        assert tw.integral == pytest.approx(2.0 + 9.0 + 0.0)
        assert tw.average == pytest.approx(11.0 / 10.0)

    def test_time_going_backwards_raises(self):
        tw = TimeWeightedValue(5.0)
        with pytest.raises(ValueError, match="backwards"):
            tw.update(4.0, 1.0)

    def test_average_over_zero_time_raises(self):
        tw = TimeWeightedValue(0.0)
        with pytest.raises(ValueError):
            _ = tw.average

    def test_current_tracks_last_value(self):
        tw = TimeWeightedValue(0.0, initial_value=2.0)
        tw.update(1.0, 7.0)
        assert tw.current == 7.0

    def test_energy_semantics(self):
        """Power in watts over seconds integrates to joules."""
        tw = TimeWeightedValue(0.0, initial_value=250.0)
        tw.update(3600.0, 300.0)
        tw.finish(7200.0)
        assert tw.integral == pytest.approx(250.0 * 3600 + 300.0 * 3600)


class TestHistogram:
    def test_quantile_of_uniform_fill(self):
        hist = Histogram(0.0, 100.0, bins=100)
        hist.extend(np.linspace(0.5, 99.5, 100))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=2.0)

    def test_out_of_range_clamped(self):
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add(-5.0)
        hist.add(25.0)
        assert hist.total == 2
        assert 0.0 <= hist.quantile(0.5) <= 10.0

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0).quantile(0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)

    def test_invalid_quantile(self):
        hist = Histogram(0.0, 1.0)
        hist.add(0.5)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_extend_matches_add(self):
        h1 = Histogram(0.0, 10.0, bins=20)
        h2 = Histogram(0.0, 10.0, bins=20)
        values = [1.0, 2.5, 7.7, 9.9]
        h1.extend(values)
        for v in values:
            h2.add(v)
        assert np.array_equal(h1.counts, h2.counts)


class TestCdf:
    def test_value_at_fraction(self):
        cdf = Cdf(list(range(101)))
        assert cdf.value_at(0.5) == pytest.approx(50.0)
        assert cdf.value_at(0.0) == 0.0
        assert cdf.value_at(1.0) == 100.0

    def test_fraction_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_below(0.0) == 0.0
        assert cdf.fraction_below(10.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_series_is_monotone(self):
        cdf = Cdf(np.random.default_rng(0).normal(size=500))
        xs, fs = cdf.series(points=50)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(fs) >= 0)
        assert fs[0] == 0.0 and fs[-1] == 1.0

    def test_series_needs_two_points(self):
        cdf = Cdf([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.series(points=1)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_fraction_below_consistent_with_value_at(self, values):
        cdf = Cdf(values)
        v = cdf.value_at(0.5)
        assert cdf.fraction_below(v) >= 0.5 - 1e-9


class TestQuantileConvention:
    """Every quantile implementation in the repo must agree with
    empirical_quantile (numpy inclusive linear interpolation) on the
    same samples — small-sample disagreements between layers would leak
    straight into oversubscription admission decisions."""

    SAMPLES = st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                       max_size=40)
    QS = st.floats(0.0, 1.0)

    @given(SAMPLES, QS)
    @settings(max_examples=100)
    def test_empirical_quantile_is_numpy_linear(self, values, q):
        assert empirical_quantile(values, q) == float(
            np.quantile(np.asarray(values, dtype=float), q))

    @given(SAMPLES, st.floats(0.0, 100.0))
    @settings(max_examples=100)
    def test_percentile_agrees(self, values, pct):
        assert percentile(values, pct) == empirical_quantile(
            values, pct / 100.0)

    @given(SAMPLES, QS)
    @settings(max_examples=100)
    def test_cdf_value_at_agrees(self, values, q):
        assert Cdf(values).value_at(q) == empirical_quantile(values, q)

    @given(SAMPLES, QS)
    @settings(max_examples=50)
    def test_queueing_latencies_agree(self, values, q):
        from repro.workloads.queueing import SimulatedLatencies

        arr = np.asarray(values, dtype=float)
        lat = SimulatedLatencies(latencies=arr, waits=np.zeros_like(arr),
                                 completed=len(values), duration=1.0)
        assert lat.quantile(q) == empirical_quantile(values, q)

    def test_quantile_template_slot_agrees(self):
        # The per-slot aggregation in DailyQuantileTemplate reduces each
        # slot's sample multiset with the same convention.
        from repro.prediction.quantiles import DailyQuantileTemplate

        step, day = 300.0, 86400.0
        times = np.arange(0.0, 5 * day, step)
        rng = np.random.default_rng(11)
        values = 200.0 + rng.normal(0.0, 30.0, size=times.shape)
        template = DailyQuantileTemplate(times, values, q=0.9)
        slots_per_day = int(round(day / step))
        slots = (np.round((times % day) / step).astype(int)) % slots_per_day
        for s in (0, 17, slots_per_day - 1):
            group = values[slots == s]
            assert template.predict(s * step) == \
                empirical_quantile(group, 0.9)

    def test_histogram_quantile_approximates_convention(self):
        # Binned estimator: documented approximation, within a bin width.
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 100.0, size=5000)
        hist = Histogram(0.0, 100.0, bins=1000)
        hist.extend(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert hist.quantile(q) == pytest.approx(
                empirical_quantile(values, q), abs=0.5)

    def test_analytic_quantile_ms_self_consistent(self):
        # The mixture quantile is a distribution quantile: inverting it
        # through the closed-form tail must give back 1 - q.
        from repro.experiments.cluster import LatencyAggregator

        agg = LatencyAggregator()
        agg.add_tick(weight=10.0, offered_rho=0.7, mu=200.0, servers=4,
                     slo_ms=50.0)
        agg.add_tick(weight=5.0, offered_rho=0.9, mu=150.0, servers=4,
                     slo_ms=50.0)
        for q in (0.5, 0.9, 0.99):
            t = agg.quantile_ms(q)
            assert agg.tail(t) == pytest.approx(1.0 - q, abs=1e-6)
