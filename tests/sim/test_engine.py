"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Event, Process, SimulationEngine


class TestScheduling:
    def test_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=100.0).now == 100.0

    def test_single_event_fires_at_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_ordered_by_priority(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("low"), priority=5)
        engine.schedule(1.0, lambda: order.append("high"), priority=0)
        engine.run()
        assert order == ["high", "low"]

    def test_same_time_same_priority_fifo(self):
        engine = SimulationEngine()
        order = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_scheduling_in_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(ValueError, match="before now"):
            engine.schedule(5.0, lambda: None)

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.5]

    def test_schedule_after_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError, match="non-negative"):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        engine = SimulationEngine()
        seen = []

        def first():
            engine.schedule_after(1.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        seen = []
        event = engine.schedule(1.0, lambda: seen.append(1))
        event.cancel()
        engine.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1
        assert not keep.cancelled

    def test_cancelled_head_does_not_leak_events_past_until(self):
        # Regression: a cancelled tombstone at t <= until used to make
        # run() call step(), which skipped the tombstone and fired the
        # next live event even when it lay past `until`.
        engine = SimulationEngine()
        seen = []
        doomed = engine.schedule(5.0, lambda: seen.append(5))
        engine.schedule(20.0, lambda: seen.append(20))
        doomed.cancel()
        engine.run(until=10.0)
        assert seen == []
        assert engine.now == 10.0
        assert engine.pending_events == 1
        engine.run()
        assert seen == [20]
        assert engine.now == 20.0


class TestPendingEventsCounter:
    """``pending_events`` is an O(1) counter, not a queue scan; it must
    stay exact through schedule / cancel / fire, and heavy cancellation
    must compact the tombstones out of the heap."""

    def test_counter_tracks_schedule_cancel_fire(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(4)]
        assert engine.pending_events == 4
        events[2].cancel()
        assert engine.pending_events == 3
        events[2].cancel()  # idempotent: no double decrement
        assert engine.pending_events == 3
        assert engine.step()
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0

    def test_cancel_after_fire_does_not_decrement(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.pending_events == 0
        event.cancel()
        assert engine.pending_events == 0

    def test_mass_cancellation_compacts_heap(self):
        engine = SimulationEngine()
        doomed = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(100)]
        keep = engine.schedule(1000.0, lambda: None)
        for event in doomed:
            event.cancel()
        # Tombstones outnumber live entries, so the heap was repeatedly
        # rebuilt: instead of carrying 100 dead entries, the queue ends
        # below the compaction floor (small residues are pruned lazily).
        assert engine.pending_events == 1
        assert len(engine._queue) <= SimulationEngine._COMPACT_MIN_QUEUE
        assert any(entry.event is keep for entry in engine._queue)

    def test_compaction_preserves_firing_order(self):
        engine = SimulationEngine()
        seen = []
        for i in range(40):
            time = float(40 - i)  # scheduled in reverse time order
            engine.schedule(time, lambda t=time: seen.append(t))
        doomed = [engine.schedule(50.0 + i, lambda: seen.append(-1))
                  for i in range(60)]
        for event in doomed:
            event.cancel()
        assert engine.pending_events == 40
        assert len(engine._queue) < 60  # tombstones were swept
        engine.run()
        assert seen == [float(t) for t in range(1, 41)]

    def test_small_queues_skip_compaction(self):
        engine = SimulationEngine()
        doomed = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        doomed.cancel()
        # Below _COMPACT_MIN_QUEUE the tombstone stays (lazily pruned
        # later); only the live counter moves.
        assert engine.pending_events == 1
        assert len(engine._queue) == 2


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(10))
        engine.run(until=5.0)
        assert seen == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_until_includes_events_at_bound(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(until=5.0)
        assert seen == [5]

    def test_run_for(self):
        engine = SimulationEngine(start_time=100.0)
        seen = []
        engine.schedule(150.0, lambda: seen.append(1))
        engine.schedule(300.0, lambda: seen.append(2))
        engine.run_for(100.0)
        assert seen == [1]
        assert engine.now == 200.0

    def test_run_for_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().run_for(-1.0)

    def test_max_events(self):
        engine = SimulationEngine()
        seen = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        engine.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_stop_from_callback(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: (seen.append(1), engine.stop()))
        engine.schedule(2.0, lambda: seen.append(2))
        engine.run()
        assert seen == [1]

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()

        def reenter():
            with pytest.raises(RuntimeError, match="re-entrant"):
                engine.run()

        engine.schedule(1.0, reenter)
        engine.run()

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(7):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 7

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_run_is_resumable(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(10))
        engine.run(until=5.0)
        engine.run()
        assert seen == [1, 10]


class TestRunControlInteractions:
    """``run(max_events=)``, ``stop()`` and tombstone compaction each
    have simple contracts in isolation; these tests pin down their
    *combined* behavior — budget-bounded runs resuming exactly where
    they left off, stop() trumping a remaining budget, and mass
    cancellation from inside a running callback compacting the heap
    without perturbing the survivors' firing order."""

    def test_max_events_run_is_resumable(self):
        engine = SimulationEngine()
        seen = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        engine.run(max_events=3)
        assert seen == [0, 1, 2]
        assert engine.now == 3.0
        assert engine.pending_events == 7
        engine.run(max_events=3)
        assert seen == [0, 1, 2, 3, 4, 5]
        engine.run()
        assert seen == list(range(10))
        assert engine.events_processed == 10

    def test_stop_trumps_remaining_max_events_budget(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: (seen.append(1), engine.stop()))
        engine.schedule(2.0, lambda: seen.append(2))
        engine.run(max_events=5)
        assert seen == [1]
        assert engine.pending_events == 1
        # stop() is per-run: the next run() starts with a clean flag.
        engine.run(max_events=5)
        assert seen == [1, 2]

    def test_max_events_and_until_whichever_binds_first(self):
        engine = SimulationEngine()
        seen = []
        for i in range(6):
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
        # Budget binds at two events — but run(until=) always leaves
        # the clock at the bound, even when the budget cut the run
        # short, so a caller alternating budgeted slices never sees
        # time stand still.
        engine.run(until=2.5, max_events=2)
        assert seen == [0, 1]
        assert engine.now == 2.5
        assert engine.pending_events == 4
        engine.run(until=4.0, max_events=100)  # bound binds
        assert seen == [0, 1, 2, 3]
        assert engine.now == 4.0

    def test_cancelled_tombstones_do_not_consume_max_events(self):
        engine = SimulationEngine()
        seen = []
        doomed = [engine.schedule(float(i + 1), lambda: seen.append(-1))
                  for i in range(5)]
        engine.schedule(10.0, lambda: seen.append(10))
        engine.schedule(11.0, lambda: seen.append(11))
        for event in doomed:
            event.cancel()
        # The five tombstones at the head are pruned, not "processed":
        # a budget of 2 must still fire both live events.
        engine.run(max_events=2)
        assert seen == [10, 11]
        assert engine.events_processed == 2

    def test_mid_run_mass_cancellation_compacts_and_preserves_order(self):
        engine = SimulationEngine()
        seen = []
        doomed = [engine.schedule(100.0 + i, lambda: seen.append(-1))
                  for i in range(90)]
        for i in range(5):
            engine.schedule(float(i + 2), lambda i=i: seen.append(i))

        def cull():
            seen.append("cull")
            for event in doomed:
                event.cancel()

        engine.schedule(1.0, cull)
        heap_before = len(engine._queue)
        engine.run()
        # The cull callback ran first, cancelled 90 queued events while
        # the loop was mid-run (tombstones > live triggers compaction),
        # and the survivors still fired in exact time order.
        assert seen == ["cull", 0, 1, 2, 3, 4]
        assert len(engine._queue) < heap_before - 80
        assert engine.pending_events == 0

    def test_mid_run_compaction_with_stop_and_budget(self):
        engine = SimulationEngine()
        seen = []
        doomed = [engine.schedule(100.0 + i, lambda: seen.append(-1))
                  for i in range(80)]
        engine.schedule(2.0, lambda: seen.append(2))
        engine.schedule(3.0, lambda: seen.append(3))

        def cull_and_stop():
            for event in doomed:
                event.cancel()
            engine.stop()

        engine.schedule(1.0, cull_and_stop)
        engine.run(max_events=10)
        # stop() ended the run after the culling event despite the
        # remaining budget; the compacted queue kept both live events.
        assert seen == []
        assert engine.pending_events == 2
        assert len(engine._queue) <= SimulationEngine._COMPACT_MIN_QUEUE
        engine.run(max_events=10)
        assert seen == [2, 3]


class TestProcess:
    def test_process_owns_and_cancels_events(self):
        engine = SimulationEngine()
        process = Process(engine)
        seen = []
        process.schedule(1.0, lambda: seen.append(1))
        process.schedule_after(2.0, lambda: seen.append(2))
        process.cancel_all()
        engine.run()
        assert seen == []

    def test_process_events_fire_normally(self):
        engine = SimulationEngine()
        process = Process(engine)
        seen = []
        process.schedule(1.0, lambda: seen.append(1))
        engine.run()
        assert seen == [1]

    def test_process_prunes_old_handles(self):
        engine = SimulationEngine()
        process = Process(engine)

        def chain(i):
            if i < 600:
                process.schedule_after(1.0, lambda: chain(i + 1))

        chain(0)
        engine.run()
        # Pruning during rescheduling keeps the handle list bounded.
        assert len(process._owned_events) < 300
