"""Tests for the gate-oxide ageing model, pinned to the paper's anchors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.reliability.aging import DEFAULT_AGING_MODEL, AgingModel

V_REF = DEFAULT_AGING_MODEL.reference_volts
V_OC = DEFAULT_FREQUENCY_PLAN.voltage(4.0)


class TestPaperAnchors:
    def test_conservative_fleet_ages_half_rate(self):
        """§III Q2: 'a CPU ages by 2.5 years over a 5-year period for a
        conservative fleet usage' — i.e. ~50 % utilization at rated
        voltage ages at half the reference rate."""
        rate = DEFAULT_AGING_MODEL.wear_rate(0.5, V_REF)
        assert rate == pytest.approx(0.5)
        assert DEFAULT_AGING_MODEL.aging(5.0, 0.5, V_REF) == \
            pytest.approx(2.5)

    def test_naive_overclocking_burns_five_years_within_one(self):
        """§III Q2: 'naively overclocking for 50 % of the time ages the
        CPU by 5 years in less than a year'."""
        model = DEFAULT_AGING_MODEL
        yearly_wear = (0.5 * model.wear_rate(0.5, V_REF)
                       + 0.5 * model.wear_rate(0.5, V_OC))
        assert yearly_wear > 5.0

    def test_reference_point_is_unity(self):
        assert DEFAULT_AGING_MODEL.wear_rate(1.0, V_REF) == \
            pytest.approx(1.0)

    def test_underutilization_accumulates_credits(self):
        """§III Q2: under-utilization accumulates lifetime credits."""
        model = DEFAULT_AGING_MODEL
        assert model.aging(1.0, 0.3, V_REF) < 1.0


class TestVoltageAcceleration:
    def test_exponential_in_voltage(self):
        model = DEFAULT_AGING_MODEL
        a1 = model.voltage_acceleration(V_REF + 0.1)
        a2 = model.voltage_acceleration(V_REF + 0.2)
        assert a2 == pytest.approx(a1 * a1, rel=1e-9)

    def test_unity_at_reference(self):
        assert DEFAULT_AGING_MODEL.voltage_acceleration(V_REF) == \
            pytest.approx(1.0)

    def test_below_reference_decelerates(self):
        assert DEFAULT_AGING_MODEL.voltage_acceleration(V_REF - 0.1) < 1.0

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            DEFAULT_AGING_MODEL.voltage_acceleration(0.0)

    @given(st.floats(0.7, 2.0))
    def test_monotone(self, volts):
        model = DEFAULT_AGING_MODEL
        assert model.voltage_acceleration(volts + 0.05) > \
            model.voltage_acceleration(volts)


class TestTemperatureAcceleration:
    def test_unity_at_reference_temp(self):
        assert DEFAULT_AGING_MODEL.temperature_acceleration(
            DEFAULT_AGING_MODEL.reference_temp_k) == pytest.approx(1.0)

    def test_cooling_reduces_wear(self):
        """§III: advanced cooling reduces ageing, enlarging the budget."""
        model = DEFAULT_AGING_MODEL
        cooler = model.reference_temp_k - 20.0
        assert model.temperature_acceleration(cooler) < 1.0

    def test_heating_accelerates(self):
        model = DEFAULT_AGING_MODEL
        assert model.temperature_acceleration(
            model.reference_temp_k + 20.0) > 1.0

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            DEFAULT_AGING_MODEL.temperature_acceleration(0.0)


class TestWearRate:
    def test_idle_silicon_does_not_wear(self):
        assert DEFAULT_AGING_MODEL.wear_rate(0.0, V_OC) == 0.0

    def test_wear_scales_linearly_with_utilization(self):
        model = DEFAULT_AGING_MODEL
        assert model.wear_rate(0.8, V_OC) == pytest.approx(
            2 * model.wear_rate(0.4, V_OC))

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            DEFAULT_AGING_MODEL.wear_rate(1.5, V_REF)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_AGING_MODEL.aging(-1.0, 0.5, V_REF)


class TestBudgetDerivation:
    def test_lifetime_neutral_fraction(self):
        """overclock_time_fraction x satisfies
        (1-x)·r_base + x·r_oc = 1 exactly."""
        model = DEFAULT_AGING_MODEL
        x = model.overclock_time_fraction(0.5, 0.5, V_OC)
        r_base = model.wear_rate(0.5, V_REF)
        r_oc = model.wear_rate(0.5, V_OC)
        assert (1 - x) * r_base + x * r_oc == pytest.approx(1.0)

    def test_lower_utilization_allows_more_overclocking(self):
        model = DEFAULT_AGING_MODEL
        assert model.overclock_time_fraction(0.3, 0.3, V_OC) > \
            model.overclock_time_fraction(0.7, 0.7, V_OC)

    def test_cooling_extends_budget(self):
        model = DEFAULT_AGING_MODEL
        cold = model.overclock_time_fraction(
            0.5, 0.5, V_OC, temp_k=model.reference_temp_k - 25)
        warm = model.overclock_time_fraction(0.5, 0.5, V_OC)
        assert cold > warm

    def test_no_acceleration_means_unbounded(self):
        model = AgingModel(beta_per_volt=0.0)
        assert model.overclock_time_fraction(0.5, 0.5, V_OC) == 1.0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            AgingModel(reference_volts=0.0)
        with pytest.raises(ValueError):
            AgingModel(beta_per_volt=-1.0)
        with pytest.raises(ValueError):
            AgingModel(reference_temp_k=-5.0)
