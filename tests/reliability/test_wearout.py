"""Tests for wear counters and epoch budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.aging import DEFAULT_AGING_MODEL
from repro.reliability.wearout import (
    CoreWearoutCounter,
    EpochBudget,
    OverclockBudgetPlanner,
)

WEEK = 7 * 86400.0
V_REF = DEFAULT_AGING_MODEL.reference_volts


class TestCoreWearoutCounter:
    def test_time_in_state_tracking(self):
        counter = CoreWearoutCounter()
        counter.accumulate(10.0, utilization=0.5, volts=V_REF)
        counter.accumulate(5.0, utilization=1.0, volts=1.75)
        assert counter.elapsed_seconds == 15.0
        assert counter.busy_seconds == pytest.approx(10.0)
        assert counter.overclock_seconds == pytest.approx(5.0)

    def test_wear_ratio_below_one_when_underutilized(self):
        counter = CoreWearoutCounter()
        counter.accumulate(100.0, 0.4, V_REF)
        assert counter.wear_ratio == pytest.approx(0.4)
        assert counter.lifetime_credit_seconds == pytest.approx(60.0)

    def test_overclocking_burns_credits(self):
        counter = CoreWearoutCounter()
        counter.accumulate(100.0, 0.5, 1.75)
        assert counter.wear_ratio > 1.0
        assert counter.lifetime_credit_seconds < 0

    def test_empty_counter(self):
        assert CoreWearoutCounter().wear_ratio == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            CoreWearoutCounter().accumulate(-1.0, 0.5, V_REF)


class TestEpochBudget:
    def test_allowance_is_fraction_of_epoch(self):
        budget = EpochBudget(budget_fraction=0.1)
        assert budget.epoch_allowance_seconds == pytest.approx(0.1 * WEEK)

    def test_per_weekday_split(self):
        """§IV-B: week epochs let unused weekend budget flow to weekdays."""
        budget = EpochBudget(budget_fraction=0.1, weekday_only=True)
        assert budget.per_weekday_seconds() == pytest.approx(
            0.1 * WEEK / 5.0)

    def test_per_weekday_all_days(self):
        budget = EpochBudget(budget_fraction=0.1, weekday_only=False)
        assert budget.per_weekday_seconds() == pytest.approx(
            0.1 * WEEK / 7.0)

    def test_consume_reduces_availability(self):
        budget = EpochBudget(budget_fraction=0.1)
        before = budget.available_seconds(0.0)
        assert budget.consume(0.0, 1000.0)
        assert budget.available_seconds(0.0) == pytest.approx(
            before - 1000.0)

    def test_consume_beyond_available_fails(self):
        budget = EpochBudget(budget_fraction=0.001)
        allowance = budget.epoch_allowance_seconds
        assert not budget.consume(0.0, allowance + 1.0)
        # And the failed consume did not burn anything.
        assert budget.available_seconds(0.0) == pytest.approx(allowance)

    def test_epoch_rollover_refreshes(self):
        budget = EpochBudget(budget_fraction=0.01,
                             carryover_cap_epochs=0.0)
        allowance = budget.epoch_allowance_seconds
        budget.consume(0.0, allowance)
        assert budget.available_seconds(0.0) == 0.0
        assert budget.available_seconds(WEEK + 1.0) == pytest.approx(
            allowance)

    def test_unused_budget_carries_over(self):
        """§IV-B: unused budgets carried over to the next epoch."""
        budget = EpochBudget(budget_fraction=0.01,
                             carryover_cap_epochs=1.0)
        allowance = budget.epoch_allowance_seconds
        # Consume nothing in epoch 0.
        assert budget.available_seconds(WEEK + 1.0) == pytest.approx(
            2 * allowance)

    def test_carryover_capped(self):
        budget = EpochBudget(budget_fraction=0.01,
                             carryover_cap_epochs=0.5)
        allowance = budget.epoch_allowance_seconds
        assert budget.available_seconds(3 * WEEK) == pytest.approx(
            1.5 * allowance)

    def test_reservation_blocks_unreserved_consumption(self):
        """§IV-B: reservations give scheduled requests predictability."""
        budget = EpochBudget(budget_fraction=0.01)
        allowance = budget.epoch_allowance_seconds
        assert budget.reserve(0.0, allowance)
        assert not budget.consume(0.0, 1.0)  # pool is empty
        assert budget.consume(0.0, 100.0, from_reservation=True)

    def test_reserve_beyond_available_fails(self):
        budget = EpochBudget(budget_fraction=0.01)
        assert not budget.reserve(0.0,
                                  budget.epoch_allowance_seconds + 1.0)

    def test_release_reservation(self):
        budget = EpochBudget(budget_fraction=0.01)
        budget.reserve(0.0, 500.0)
        budget.release_reservation(0.0, 500.0)
        assert budget.available_seconds(0.0) == pytest.approx(
            budget.epoch_allowance_seconds)

    def test_time_backwards_rejected(self):
        budget = EpochBudget()
        budget.available_seconds(2 * WEEK)
        with pytest.raises(ValueError, match="backwards"):
            budget.available_seconds(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EpochBudget(budget_fraction=1.5)
        with pytest.raises(ValueError):
            EpochBudget(epoch_seconds=0.0)
        with pytest.raises(ValueError):
            EpochBudget(carryover_cap_epochs=-1.0)
        with pytest.raises(ValueError):
            EpochBudget(epoch_seconds=3600.0).per_weekday_seconds()

    @given(st.lists(st.floats(0.0, 20000.0), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_never_overspends_epoch(self, amounts):
        """Invariant: total consumption within one epoch never exceeds
        the allowance plus carryover."""
        budget = EpochBudget(budget_fraction=0.05)
        consumed = 0.0
        for amount in amounts:
            if budget.consume(1000.0, amount):
                consumed += amount
        assert consumed <= budget.epoch_allowance_seconds * (
            1 + budget.carryover_cap_epochs) + 1e-6


class TestPlanner:
    def test_derived_fraction_reasonable(self):
        """The vendor-analysis outcome is a small but usable share of time
        (the paper cites e.g. 10 %)."""
        fraction = OverclockBudgetPlanner().budget_fraction()
        assert 0.01 <= fraction <= 0.25

    def test_make_budget_uses_derived_fraction(self):
        planner = OverclockBudgetPlanner()
        budget = planner.make_budget()
        assert budget.budget_fraction == pytest.approx(
            planner.budget_fraction())

    def test_worst_case_utilization_default(self):
        planner = OverclockBudgetPlanner()
        explicit = planner.budget_fraction(baseline_utilization=0.5,
                                           oc_utilization=0.5)
        default = planner.budget_fraction(baseline_utilization=0.5)
        assert explicit == pytest.approx(default)
