"""Tests for online wear-counter budgeting (§VI extension)."""

import math

import pytest

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.reliability.aging import DEFAULT_AGING_MODEL
from repro.reliability.online_wear import OnlineWearBudget
from repro.reliability.wearout import CoreWearoutCounter

V_REF = DEFAULT_AGING_MODEL.reference_volts
V_OC = DEFAULT_FREQUENCY_PLAN.voltage(4.0)
HOUR = 3600.0


def warmed_counter(hours=10.0, utilization=0.3, volts=V_REF):
    counter = CoreWearoutCounter()
    counter.accumulate(hours * HOUR, utilization, volts)
    return counter


class TestCredits:
    def test_no_overclocking_during_warmup(self):
        budget = OnlineWearBudget(CoreWearoutCounter(),
                                  warmup_seconds=HOUR)
        assert budget.usable_credit_seconds() == 0.0
        assert not budget.can_overclock(0.5, V_OC, 1.0)

    def test_underutilized_core_accumulates_credits(self):
        budget = OnlineWearBudget(warmed_counter(utilization=0.3),
                                  safety_margin=0.0)
        # 10h at 30% util → 7h of credits.
        assert budget.usable_credit_seconds() == pytest.approx(7 * HOUR)

    def test_safety_margin_discounts(self):
        counter = warmed_counter(utilization=0.3)
        full = OnlineWearBudget(counter, safety_margin=0.0)
        held = OnlineWearBudget(counter, safety_margin=0.5)
        assert held.usable_credit_seconds() == pytest.approx(
            0.5 * full.usable_credit_seconds())

    def test_worn_core_has_no_credits(self):
        counter = CoreWearoutCounter()
        counter.accumulate(5 * HOUR, 0.9, V_OC)  # heavy overclocked use
        budget = OnlineWearBudget(counter, warmup_seconds=0.0)
        assert budget.usable_credit_seconds() == 0.0


class TestAvailability:
    def test_available_seconds_match_burn_rate(self):
        budget = OnlineWearBudget(warmed_counter(), safety_margin=0.0)
        util = 0.5
        burn = DEFAULT_AGING_MODEL.wear_rate(util, V_OC) - 1.0
        expected = budget.usable_credit_seconds() / burn
        assert budget.available_seconds(util, V_OC) == pytest.approx(
            expected)

    def test_reference_point_overclocking_is_free(self):
        """Running at the rated point never burns credits."""
        budget = OnlineWearBudget(warmed_counter())
        assert budget.available_seconds(0.3, V_REF) == math.inf

    def test_lower_utilization_extends_availability(self):
        budget = OnlineWearBudget(warmed_counter())
        assert budget.available_seconds(0.2, V_OC) > \
            budget.available_seconds(0.8, V_OC)

    def test_can_overclock_duration_check(self):
        budget = OnlineWearBudget(warmed_counter(), safety_margin=0.0)
        available = budget.available_seconds(0.5, V_OC)
        assert budget.can_overclock(0.5, V_OC, available * 0.9)
        assert not budget.can_overclock(0.5, V_OC, available * 1.1)
        with pytest.raises(ValueError):
            budget.can_overclock(0.5, V_OC, -1.0)


class TestSustainableFraction:
    def test_more_permissive_than_offline_on_idle_parts(self):
        """§VI: the offline analysis assumes conservative fleet usage;
        counters unlock more overclocking on lightly-loaded parts."""
        budget = OnlineWearBudget(warmed_counter(utilization=0.2))
        online = budget.sustainable_fraction(0.2, V_OC)
        assert online > 0.10  # the paper's offline 10 % figure

    def test_stricter_than_offline_on_hot_parts(self):
        budget = OnlineWearBudget(warmed_counter(utilization=0.9))
        online = budget.sustainable_fraction(0.9, V_OC)
        assert online < 0.10

    def test_bounds(self):
        budget = OnlineWearBudget(warmed_counter())
        assert budget.sustainable_fraction(0.0, V_OC) == 1.0
        hot = OnlineWearBudget(warmed_counter(utilization=1.0, volts=V_OC))
        assert hot.sustainable_fraction(1.0, V_OC) == 0.0

    def test_no_history_raises(self):
        budget = OnlineWearBudget(CoreWearoutCounter(), warmup_seconds=0.0)
        with pytest.raises(ValueError):
            budget.sustainable_fraction(0.5, V_OC)


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnlineWearBudget(CoreWearoutCounter(), safety_margin=1.0)
        with pytest.raises(ValueError):
            OnlineWearBudget(CoreWearoutCounter(), warmup_seconds=-1.0)


class TestSoaIntegration:
    def test_online_mode_grants_and_revokes_on_credits(self):
        from repro.cluster.power import DEFAULT_POWER_MODEL
        from repro.cluster.topology import Rack, Server, VirtualMachine
        from repro.core.config import SmartOClockConfig
        from repro.core.soa import ServerOverclockingAgent
        from repro.core.types import OverclockRequest, RequestKind

        config = SmartOClockConfig(lifetime_mode="online",
                                   online_wear_warmup_s=0.0)
        rack = Rack("r", 5000.0)
        server = Server("s", DEFAULT_POWER_MODEL)
        rack.add_server(server)
        vm = VirtualMachine(4, utilization=0.3)
        server.place_vm(vm)
        soa = ServerOverclockingAgent(server, config)
        # Build up credits: run at low utilization for a while.
        for i in range(360):
            soa.control_tick(i * 10.0, dt=10.0)
        request = OverclockRequest(vm_id=vm.vm_id,
                                   kind=RequestKind.METRICS,
                                   target_freq_ghz=4.0, n_cores=4,
                                   time=3600.0)
        decision = soa.handle_request(request, now=3600.0)
        assert decision.granted
        # granted_until reflects the credits, not a fixed epoch share.
        assert decision.granted_until is not None

    def test_online_mode_rejects_worn_parts(self):
        from repro.cluster.power import DEFAULT_POWER_MODEL
        from repro.cluster.topology import Rack, Server, VirtualMachine
        from repro.core.config import SmartOClockConfig
        from repro.core.soa import ServerOverclockingAgent
        from repro.core.types import (
            OverclockRequest,
            RejectionReason,
            RequestKind,
        )

        config = SmartOClockConfig(lifetime_mode="online",
                                   online_wear_warmup_s=0.0)
        rack = Rack("r", 5000.0)
        server = Server("s", DEFAULT_POWER_MODEL)
        rack.add_server(server)
        vm = VirtualMachine(4, utilization=1.0)
        server.place_vm(vm)
        soa = ServerOverclockingAgent(server, config)
        # Burn all lifetime: run the cores hot and overclocked.
        server.set_vm_frequency(vm, 4.0)
        for i in range(60):
            soa._accrue_wear(i * 60.0, dt=60.0)
        server.set_vm_frequency(vm, 3.3)
        request = OverclockRequest(vm_id=vm.vm_id,
                                   kind=RequestKind.METRICS,
                                   target_freq_ghz=4.0, n_cores=4,
                                   time=3600.0)
        decision = soa.handle_request(request, now=3600.0)
        assert not decision.granted
        assert decision.reason is RejectionReason.LIFETIME_BUDGET
