"""Smoke tests keeping the examples runnable.

The three fast examples run end to end in a subprocess; the two long ones
(minutes of simulation) are compile-checked so they cannot rot silently.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "lifetime_budgeting.py", "extensions_tour.py"]
SLOW = ["trace_driven_fleet.py", "microservice_autoscaling.py"]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("script", FAST + SLOW)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


def test_quickstart_shows_an_overclock_cycle():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "overclocked" in result.stdout
    assert "turbo" in result.stdout
