"""Tests for the SocialNet microservice models."""

import pytest

from repro.workloads.microservices import (
    SOCIALNET_SERVICES,
    MicroserviceDeployment,
    MicroserviceInstance,
    MicroserviceSpec,
    socialnet_service,
)

TURBO = 3.3
OVERCLOCK = 4.0


class TestSpec:
    def test_eight_services(self):
        assert len(SOCIALNET_SERVICES) == 8

    def test_lookup_by_name(self):
        assert socialnet_service("Usr").name == "Usr"
        with pytest.raises(KeyError):
            socialnet_service("Nope")

    def test_slo_is_five_times_unloaded(self):
        """Paper §III: SLO = 5x execution time on an unloaded system."""
        for spec in SOCIALNET_SERVICES:
            assert spec.slo_ms == pytest.approx(5.0 * spec.unloaded_ms)

    def test_service_rate_at_turbo(self):
        spec = MicroserviceSpec("x", unloaded_ms=2.0, workers=4,
                                freq_sensitivity=1.0)
        assert spec.service_rate(TURBO) == pytest.approx(500.0)

    def test_overclocking_raises_capacity(self):
        for spec in SOCIALNET_SERVICES:
            assert spec.capacity(OVERCLOCK) > spec.capacity(TURBO)

    def test_memory_bound_service_gains_less(self):
        media = socialnet_service("Media")       # sensitivity 0.4
        urlshort = socialnet_service("UrlShort")  # sensitivity 0.9
        gain = lambda s: s.capacity(OVERCLOCK) / s.capacity(TURBO)
        assert gain(media) < gain(urlshort)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            MicroserviceSpec("x", unloaded_ms=0.0, workers=1,
                             freq_sensitivity=0.5)
        with pytest.raises(ValueError):
            MicroserviceSpec("x", unloaded_ms=1.0, workers=0,
                             freq_sensitivity=0.5)
        with pytest.raises(ValueError):
            MicroserviceSpec("x", unloaded_ms=1.0, workers=1,
                             freq_sensitivity=1.5)
        with pytest.raises(ValueError):
            MicroserviceSpec("x", unloaded_ms=1.0, workers=1,
                             freq_sensitivity=0.5, slo_multiplier=1.0)

    def test_rho_for_slo_hits_slo(self):
        for spec in SOCIALNET_SERVICES:
            rho = spec.rho_for_slo(TURBO)
            instance = MicroserviceInstance(spec)
            instance.set_load(rho * spec.capacity(TURBO))
            assert instance.p99_latency_ms() == pytest.approx(
                spec.slo_ms, rel=0.01)

    def test_fragile_service_has_lower_critical_load(self):
        """§III Q1: UrlShort violates its SLO at a much lower utilization
        than Usr."""
        assert socialnet_service("UrlShort").rho_for_slo() < \
            0.5 * socialnet_service("Usr").rho_for_slo()


class TestInstance:
    def test_latency_grows_with_load(self):
        spec = socialnet_service("ComposePost")
        instance = MicroserviceInstance(spec)
        p99s = []
        for rho in (0.2, 0.5, 0.8):
            instance.set_load(rho * spec.capacity(TURBO))
            p99s.append(instance.p99_latency_ms())
        assert p99s[0] < p99s[1] < p99s[2]

    def test_overclocking_lowers_latency(self):
        spec = socialnet_service("ComposePost")
        rate = 0.7 * spec.capacity(TURBO)
        base = MicroserviceInstance(spec, TURBO)
        base.set_load(rate)
        boosted = MicroserviceInstance(spec, OVERCLOCK)
        boosted.set_load(rate)
        assert boosted.p99_latency_ms() < base.p99_latency_ms()
        assert boosted.utilization < base.utilization

    def test_overload_reports_finite_latency(self):
        spec = socialnet_service("Usr")
        instance = MicroserviceInstance(spec)
        instance.set_load(1.5 * spec.capacity(TURBO))
        p99 = instance.p99_latency_ms()
        assert p99 > spec.slo_ms
        assert p99 < float("inf")

    def test_overload_latency_grows_with_excess(self):
        spec = socialnet_service("Usr")
        instance = MicroserviceInstance(spec)
        instance.set_load(1.2 * spec.capacity(TURBO))
        at_12 = instance.p99_latency_ms()
        instance.set_load(1.6 * spec.capacity(TURBO))
        assert instance.p99_latency_ms() > at_12

    def test_utilization_clamped(self):
        spec = socialnet_service("Usr")
        instance = MicroserviceInstance(spec)
        instance.set_load(2.0 * spec.capacity(TURBO))
        assert instance.utilization == 1.0
        assert instance.offered_rho == pytest.approx(2.0)

    def test_meets_slo(self):
        spec = socialnet_service("Usr")
        instance = MicroserviceInstance(spec)
        instance.set_load(0.3 * spec.capacity(TURBO))
        assert instance.meets_slo()

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            MicroserviceInstance(socialnet_service("Usr")).set_load(-1.0)


class TestDeployment:
    def test_load_balanced_evenly(self):
        spec = socialnet_service("ComposePost")
        deployment = MicroserviceDeployment(spec, initial_instances=4)
        deployment.set_load(100.0)
        assert all(i.arrival_rate == pytest.approx(25.0)
                   for i in deployment.instances)

    def test_scale_out_reduces_latency(self):
        spec = socialnet_service("ComposePost")
        deployment = MicroserviceDeployment(spec, initial_instances=1)
        deployment.set_load(0.85 * spec.capacity(TURBO))
        before = deployment.p99_latency_ms()
        deployment.scale_to(2)
        assert deployment.p99_latency_ms() < before

    def test_scale_in(self):
        spec = socialnet_service("Usr")
        deployment = MicroserviceDeployment(spec, initial_instances=3)
        deployment.set_load(30.0)
        deployment.scale_to(1)
        assert deployment.n_instances == 1
        assert deployment.instances[0].arrival_rate == pytest.approx(30.0)

    def test_scale_to_zero_rejected(self):
        deployment = MicroserviceDeployment(socialnet_service("Usr"))
        with pytest.raises(ValueError):
            deployment.scale_to(0)

    def test_set_frequency_propagates(self):
        deployment = MicroserviceDeployment(socialnet_service("Usr"),
                                            initial_instances=2)
        deployment.set_frequency(3.9)
        assert all(i.freq_ghz == 3.9 for i in deployment.instances)

    def test_required_instances(self):
        spec = socialnet_service("ComposePost")
        deployment = MicroserviceDeployment(spec)
        needed = deployment.required_instances(
            2.0 * spec.capacity(TURBO), target_rho=0.7)
        assert needed == 3  # 2.0 / 0.7 = 2.86 -> ceil 3

    def test_required_instances_invalid_rho(self):
        deployment = MicroserviceDeployment(socialnet_service("Usr"))
        with pytest.raises(ValueError):
            deployment.required_instances(10.0, target_rho=1.0)
