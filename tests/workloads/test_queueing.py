"""Tests for the queueing models, including analytic-vs-simulation
cross-validation (the two implementations must agree)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.queueing import (
    MMcQueue,
    OverloadedQueueError,
    QueueSimulator,
    frequency_speedup,
    simulate_mgc,
)


class TestFrequencySpeedup:
    def test_fully_core_bound(self):
        assert frequency_speedup(4.0, 3.3, 1.0) == pytest.approx(4.0 / 3.3)

    def test_fully_memory_bound(self):
        assert frequency_speedup(4.0, 3.3, 0.0) == pytest.approx(1.0)

    def test_partial_sensitivity_between(self):
        s = frequency_speedup(4.0, 3.3, 0.5)
        assert 1.0 < s < 4.0 / 3.3

    def test_identity_at_base(self):
        assert frequency_speedup(3.3, 3.3, 0.7) == pytest.approx(1.0)

    def test_slowdown_below_base(self):
        assert frequency_speedup(2.45, 3.3, 1.0) < 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frequency_speedup(0.0, 3.3)
        with pytest.raises(ValueError):
            frequency_speedup(3.3, 3.3, 1.5)

    @given(st.floats(0.1, 1.0), st.floats(2.0, 5.0))
    def test_monotone_in_frequency(self, sens, freq):
        assert frequency_speedup(freq + 0.5, 3.3, sens) >= \
            frequency_speedup(freq, 3.3, sens)


class TestMMcClosedForm:
    def test_mm1_mean_response(self):
        """M/M/1: E[T] = 1 / (mu - lambda)."""
        queue = MMcQueue(arrival_rate=0.5, service_rate=1.0, servers=1)
        assert queue.mean_response() == pytest.approx(2.0)

    def test_mm1_erlang_c_is_rho(self):
        queue = MMcQueue(arrival_rate=0.7, service_rate=1.0, servers=1)
        assert queue.erlang_c() == pytest.approx(0.7)

    def test_mm1_p99(self):
        """M/M/1 response time is Exp(mu - lambda)."""
        queue = MMcQueue(arrival_rate=0.5, service_rate=1.0, servers=1)
        assert queue.p99_response() == pytest.approx(
            math.log(100) / 0.5, rel=1e-6)

    def test_zero_arrivals(self):
        queue = MMcQueue(0.0, 1.0, 4)
        assert queue.erlang_c() == 0.0
        assert queue.mean_wait() == 0.0
        assert queue.mean_response() == pytest.approx(1.0)

    def test_unstable_raises(self):
        queue = MMcQueue(arrival_rate=2.0, service_rate=1.0, servers=1)
        assert not queue.stable
        with pytest.raises(OverloadedQueueError):
            queue.mean_response()
        with pytest.raises(OverloadedQueueError):
            queue.p99_response()

    def test_tail_monotone_decreasing(self):
        queue = MMcQueue(3.0, 1.0, 4)
        ts = np.linspace(0, 10, 50)
        tails = [queue.response_tail(float(t)) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))

    def test_tail_at_zero_is_one(self):
        queue = MMcQueue(3.0, 1.0, 4)
        assert queue.response_tail(0.0) == pytest.approx(1.0)

    def test_tail_negative_time(self):
        assert MMcQueue(1.0, 1.0, 2).response_tail(-1.0) == 1.0

    def test_quantile_inverts_tail(self):
        queue = MMcQueue(3.0, 1.0, 4)
        t95 = queue.response_quantile(0.95)
        assert queue.response_tail(t95) == pytest.approx(0.05, abs=1e-6)

    def test_quantile_bounds(self):
        queue = MMcQueue(1.0, 1.0, 2)
        with pytest.raises(ValueError):
            queue.response_quantile(0.0)
        with pytest.raises(ValueError):
            queue.response_quantile(1.0)

    def test_economy_of_scale(self):
        """More servers at the same per-server load → lower tail (the
        Usr-vs-UrlShort effect of §III Q1)."""
        small = MMcQueue(0.7, 1.0, 1)
        big = MMcQueue(0.7 * 16, 1.0, 16)
        assert big.p99_response() < small.p99_response()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MMcQueue(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            MMcQueue(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            MMcQueue(1.0, 1.0, 0)

    def test_degenerate_rate_case(self):
        """theta == mu needs the special-case branch: c*mu - lam = mu."""
        queue = MMcQueue(arrival_rate=1.0, service_rate=1.0, servers=2)
        # Just exercise it and sanity-check monotonicity.
        assert 0.0 < queue.response_tail(1.0) < 1.0
        assert queue.response_quantile(0.99) > 0

    @given(st.floats(0.05, 0.95), st.integers(1, 8))
    @settings(max_examples=40)
    def test_mean_response_at_least_service_time(self, rho, c):
        queue = MMcQueue(rho * c, 1.0, c)
        assert queue.mean_response() >= 1.0 - 1e-9


class TestSimulationAgreement:
    """Closed form vs request-level simulation — both must tell the same
    story (this is our substitute for 'validating the model')."""

    @pytest.mark.parametrize("rho,c", [(0.5, 1), (0.8, 4), (0.6, 8)])
    def test_mean_matches(self, rho, c):
        queue = MMcQueue(rho * c, 1.0, c)
        sim = simulate_mgc(rho * c, 1.0, c, n_requests=120000, seed=7)
        assert sim.mean() == pytest.approx(queue.mean_response(), rel=0.06)

    @pytest.mark.parametrize("rho,c", [(0.5, 1), (0.8, 4)])
    def test_p99_matches(self, rho, c):
        queue = MMcQueue(rho * c, 1.0, c)
        sim = simulate_mgc(rho * c, 1.0, c, n_requests=120000, seed=11)
        assert sim.p99() == pytest.approx(queue.p99_response(), rel=0.12)

    def test_heavier_tail_with_high_cv(self):
        """Lognormal service with cv>1 produces a worse tail than M/M/c."""
        exp_sim = simulate_mgc(0.7, 1.0, 1, n_requests=60000, cv=1.0,
                               seed=3)
        heavy = simulate_mgc(0.7, 1.0, 1, n_requests=60000, cv=3.0, seed=3)
        assert heavy.p99() > exp_sim.p99()


class TestQueueSimulator:
    def test_deterministic_with_seed(self):
        a = simulate_mgc(1.0, 2.0, 1, n_requests=500, seed=42)
        b = simulate_mgc(1.0, 2.0, 1, n_requests=500, seed=42)
        assert np.array_equal(a.latencies, b.latencies)

    def test_latency_at_least_service(self):
        sim = simulate_mgc(1.0, 2.0, 2, n_requests=2000, seed=1)
        assert np.all(sim.latencies >= sim.waits)
        assert np.all(sim.waits >= 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            QueueSimulator(0.0, 1.0, 1, seed=0)
        with pytest.raises(ValueError):
            QueueSimulator(1.0, 1.0, 1, cv=0.0, seed=0)
        with pytest.raises(ValueError):
            QueueSimulator(1.0, 1.0, 1, seed=0).run(0)

    def test_randomness_must_be_explicit(self):
        """Omitting both rng and seed is an error: the old hidden
        default seed silently correlated independent stations."""
        with pytest.raises(ValueError, match="explicit rng= or seed="):
            QueueSimulator(1.0, 1.0, 1)
        with pytest.raises(ValueError, match="not both"):
            QueueSimulator(1.0, 1.0, 1, seed=1,
                           rng=np.random.default_rng(1))

    def test_seed_equivalent_to_generator(self):
        by_seed = QueueSimulator(1.0, 2.0, 2, seed=9).run(200)
        by_rng = QueueSimulator(1.0, 2.0, 2,
                                rng=np.random.default_rng(9)).run(200)
        assert np.array_equal(by_seed.latencies, by_rng.latencies)

    def test_distinct_seeds_decorrelate_stations(self):
        a = QueueSimulator(1.0, 2.0, 1, seed=1).run(200)
        b = QueueSimulator(1.0, 2.0, 1, seed=2).run(200)
        assert not np.array_equal(a.latencies, b.latencies)

    def test_quantile_api(self):
        sim = simulate_mgc(1.0, 2.0, 1, n_requests=5000, seed=1)
        assert sim.quantile(0.5) <= sim.quantile(0.99)
