"""Tests for the MLTrain and WebConf workload models."""

import pytest

from repro.workloads.mltrain import MLTrainJob
from repro.workloads.webconf import WebConfDeployment, WebConfVM


class TestMLTrain:
    def test_throughput_scales_with_frequency(self):
        job = MLTrainJob(base_throughput=1000.0)
        assert job.throughput(4.0) > job.throughput(3.3)

    def test_throughput_at_turbo_is_base(self):
        job = MLTrainJob(base_throughput=1000.0)
        assert job.throughput(3.3) == pytest.approx(1000.0)

    def test_advance_accumulates_samples(self):
        job = MLTrainJob(base_throughput=100.0)
        done = job.advance(10.0, 3.3)
        assert done == pytest.approx(1000.0)
        assert job.samples_processed == pytest.approx(1000.0)

    def test_average_throughput_reflects_throttling(self):
        job = MLTrainJob(base_throughput=100.0)
        job.advance(10.0, 3.3)
        job.advance(10.0, 2.45)  # throttled by a capping event
        assert job.average_throughput() < 100.0

    def test_average_before_running_raises(self):
        with pytest.raises(ValueError):
            MLTrainJob().average_throughput()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MLTrainJob(base_throughput=0.0)
        with pytest.raises(ValueError):
            MLTrainJob(utilization=1.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            MLTrainJob().advance(-1.0, 3.3)


class TestWebConfVM:
    def test_utilization_drops_when_overclocked(self):
        vm = WebConfVM("vm", base_utilization=0.8)
        base = vm.utilization
        vm.set_frequency(4.0)
        assert vm.utilization < base

    def test_utilization_at_turbo_is_base(self):
        vm = WebConfVM("vm", base_utilization=0.8)
        assert vm.utilization == pytest.approx(0.8)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            WebConfVM("vm", base_utilization=1.2)
        vm = WebConfVM("vm", base_utilization=0.5)
        with pytest.raises(ValueError):
            vm.set_base_utilization(-0.1)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            WebConfVM("vm", 0.5).set_frequency(0.0)


class TestWebConfDeployment:
    def test_deployment_utilization_is_mean(self):
        deployment = WebConfDeployment([
            WebConfVM("a", 0.1), WebConfVM("b", 0.8)])
        assert deployment.deployment_utilization() == pytest.approx(0.45)

    def test_fig4_scenario(self):
        """Paper Fig. 4: VM2 hot but the deployment-level goal already met
        — overclocking is unnecessary at deployment level."""
        vm1, vm2 = WebConfVM("vm1", 0.10), WebConfVM("vm2", 0.80)
        deployment = WebConfDeployment([vm1, vm2], target_utilization=0.5)
        assert deployment.meets_target()
        assert not deployment.overclock_is_needed()
        # An instance-level policy would still flag VM2:
        assert vm2 in deployment.hot_vms(threshold=0.7)

    def test_overclock_needed_when_target_violated(self):
        deployment = WebConfDeployment(
            [WebConfVM("a", 0.7), WebConfVM("b", 0.8)],
            target_utilization=0.5)
        assert deployment.overclock_is_needed()

    def test_empty_deployment_rejected(self):
        with pytest.raises(ValueError):
            WebConfDeployment([])

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            WebConfDeployment([WebConfVM("a", 0.5)], target_utilization=0.0)
