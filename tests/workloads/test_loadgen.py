"""Tests for load-pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.loadgen import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    BusinessHoursPattern,
    CompositePattern,
    ConstantPattern,
    DiurnalPattern,
    NoisyPattern,
    SpikePattern,
    TopOfHourPattern,
    WeekendScaledPattern,
)

ALL_PATTERNS = [
    ConstantPattern(0.5),
    DiurnalPattern(),
    BusinessHoursPattern(),
    TopOfHourPattern(),
    SpikePattern([(100.0, 50.0, 0.9)]),
    WeekendScaledPattern(DiurnalPattern()),
    CompositePattern([(DiurnalPattern(), 1.0), (ConstantPattern(0.3), 2.0)]),
]


@pytest.mark.parametrize("pattern", ALL_PATTERNS,
                         ids=lambda p: type(p).__name__)
def test_levels_always_in_unit_interval(pattern):
    times = np.linspace(0, 7 * SECONDS_PER_DAY, 2000)
    for t in times:
        level = pattern.level(float(t))
        assert 0.0 <= level <= 1.0, f"level {level} at t={t}"


class TestConstant:
    def test_level(self):
        assert ConstantPattern(0.42).level(12345.0) == 0.42

    def test_rate_scaling(self):
        assert ConstantPattern(0.5, peak_rate=100.0).rate(0.0) == 50.0

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            ConstantPattern(1.5)

    def test_invalid_peak_rate(self):
        with pytest.raises(ValueError):
            ConstantPattern(0.5, peak_rate=0.0)


class TestDiurnal:
    def test_peaks_at_peak_hour(self):
        pattern = DiurnalPattern(peak_hour=13.0, floor=0.2)
        assert pattern.level(13 * SECONDS_PER_HOUR) == pytest.approx(1.0)

    def test_trough_twelve_hours_later(self):
        pattern = DiurnalPattern(peak_hour=13.0, floor=0.2)
        assert pattern.level(1 * SECONDS_PER_HOUR) == pytest.approx(0.2)

    def test_daily_periodicity(self):
        pattern = DiurnalPattern()
        assert pattern.level(3600.0) == pytest.approx(
            pattern.level(3600.0 + SECONDS_PER_DAY))

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            DiurnalPattern(floor=1.0)


class TestBusinessHours:
    def test_plateau_between_start_and_end(self):
        """Fig. 1 Service A: peak 10am-noon."""
        pattern = BusinessHoursPattern(start_hour=10, end_hour=12)
        assert pattern.level(11 * SECONDS_PER_HOUR) == 1.0
        assert pattern.level(10 * SECONDS_PER_HOUR) == 1.0

    def test_floor_at_night(self):
        pattern = BusinessHoursPattern(floor=0.3)
        assert pattern.level(2 * SECONDS_PER_HOUR) == pytest.approx(0.3)

    def test_ramp_is_between_floor_and_peak(self):
        pattern = BusinessHoursPattern(start_hour=10, end_hour=12,
                                       floor=0.3, ramp_hours=2.0)
        mid_ramp = pattern.level(9 * SECONDS_PER_HOUR)
        assert 0.3 < mid_ramp < 1.0

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            BusinessHoursPattern(start_hour=12, end_hour=10)


class TestTopOfHour:
    def test_spike_in_first_five_minutes(self):
        """Fig. 1 Services B/C: 5-minute peaks at the top of the hour."""
        pattern = TopOfHourPattern(spike_minutes=5.0, base_scale=0.4)
        noon = 12 * SECONDS_PER_HOUR
        spike = pattern.level(noon + 120.0)       # 12:02
        between = pattern.level(noon + 900.0)     # 12:15
        assert spike > between

    def test_half_hour_spike_toggle(self):
        noon = 12 * SECONDS_PER_HOUR
        with_half = TopOfHourPattern(include_half_hour=True)
        without = TopOfHourPattern(include_half_hour=False)
        t = noon + 31 * 60.0
        assert with_half.level(t) > without.level(t)

    def test_invalid_spike_minutes(self):
        with pytest.raises(ValueError):
            TopOfHourPattern(spike_minutes=45.0)


class TestSpikePattern:
    def test_spike_overrides_base(self):
        pattern = SpikePattern([(100.0, 50.0, 0.9)],
                               base=ConstantPattern(0.2))
        assert pattern.level(120.0) == 0.9
        assert pattern.level(99.0) == 0.2
        assert pattern.level(150.0) == 0.2  # end-exclusive

    def test_base_wins_if_higher(self):
        pattern = SpikePattern([(0.0, 10.0, 0.1)],
                               base=ConstantPattern(0.5))
        assert pattern.level(5.0) == 0.5

    def test_invalid_spike(self):
        with pytest.raises(ValueError):
            SpikePattern([(0.0, -1.0, 0.5)])
        with pytest.raises(ValueError):
            SpikePattern([(0.0, 1.0, 1.5)])


class TestWeekendScaled:
    def test_weekday_unscaled(self):
        pattern = WeekendScaledPattern(ConstantPattern(0.8),
                                       weekend_scale=0.5)
        assert pattern.level(0.0) == 0.8  # Monday

    def test_weekend_scaled(self):
        pattern = WeekendScaledPattern(ConstantPattern(0.8),
                                       weekend_scale=0.5)
        saturday = 5 * SECONDS_PER_DAY + 3600.0
        assert pattern.level(saturday) == pytest.approx(0.4)


class TestNoisy:
    def test_noise_is_reproducible_within_run(self):
        pattern = NoisyPattern(ConstantPattern(0.5),
                               np.random.default_rng(1), sigma=0.2)
        assert pattern.level(100.0) == pattern.level(100.0)

    def test_different_seeds_differ(self):
        a = NoisyPattern(ConstantPattern(0.5), np.random.default_rng(1),
                         sigma=0.3)
        b = NoisyPattern(ConstantPattern(0.5), np.random.default_rng(2),
                         sigma=0.3)
        times = np.arange(0, 10000, 500.0)
        assert any(a.level(float(t)) != b.level(float(t)) for t in times)

    def test_zero_sigma_is_identity(self):
        pattern = NoisyPattern(ConstantPattern(0.5),
                               np.random.default_rng(1), sigma=0.0)
        assert pattern.level(42.0) == pytest.approx(0.5)


class TestComposite:
    def test_weights_normalized(self):
        pattern = CompositePattern([(ConstantPattern(1.0), 3.0),
                                    (ConstantPattern(0.0), 1.0)])
        assert pattern.level(0.0) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositePattern([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            CompositePattern([(ConstantPattern(0.5), 0.0)])


class TestSampling:
    def test_sample_levels_shape(self):
        times, levels = DiurnalPattern().sample_levels(
            0.0, SECONDS_PER_DAY, 300.0)
        assert len(times) == len(levels) == 288

    def test_sample_levels_bad_step(self):
        with pytest.raises(ValueError):
            DiurnalPattern().sample_levels(0.0, 100.0, 0.0)

    @given(st.floats(0, 6 * SECONDS_PER_DAY))
    @settings(max_examples=30)
    def test_rate_is_level_times_peak(self, t):
        pattern = DiurnalPattern(peak_rate=200.0)
        assert pattern.rate(t) == pytest.approx(200.0 * pattern.level(t))
