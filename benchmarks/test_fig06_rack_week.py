"""Fig. 6 — one busy rack's power over 5 weekdays: the baseline stays
under the limit, naive overclocking exceeds it part of the time."""

import numpy as np


def test_fig06_rack_week(benchmark, record_result):
    from repro.experiments.characterization import fig6_rack_week

    series = benchmark.pedantic(fig6_rack_week, rounds=1, iterations=1)

    print("\nFig. 6 — rack power over 5 weekdays (4-hourly means, W)")
    buckets = np.arange(0, 120, 4)
    base = [float(np.mean(series.baseline_watts[
        (series.hours >= b) & (series.hours < b + 4)])) for b in buckets]
    boosted = [float(np.mean(series.overclocked_watts[
        (series.hours >= b) & (series.hours < b + 4)])) for b in buckets]
    print("  baseline :", " ".join(f"{v:5.0f}" for v in base))
    print("  overclock:", " ".join(f"{v:5.0f}" for v in boosted))
    print(f"  limit = {series.limit_watts:.0f} W")
    print(f"  time without capping if naively overclocked: "
          f"{series.no_cap_fraction:.1%} (paper: ~85%)")

    # Paper findings: baseline below the limit; naive overclocking
    # exceeds it for a minority of the time (there is headroom ~85 % of
    # the time, but a power-aware policy is needed for the rest).
    assert series.baseline_cap_fraction < 0.02
    assert 0.0 < series.overclocked_cap_fraction < 0.4
    assert series.no_cap_fraction > 0.6
    record_result("fig06",
                  no_cap_fraction=series.no_cap_fraction,
                  paper_no_cap_fraction=0.85)
