"""Micro-benchmark: capping-event resolution with incremental power
accounting (ISSUE 1 tentpole).

The enforcement loop (§IV-D) polls rack power once per 100 MHz step while
it throttles, so capping used to cost O(steps × servers × cores) in full
power-model evaluations.  With the incremental accounting layer every
poll is an O(1) cached read.  This benchmark resolves an identical cap
event on a 32-server × 64-core rack twice — once against the cached
reads, once against a from-scratch ``recompute_power_watts`` baseline
(the pre-ISSUE-1 behaviour) — and records both timings.
"""

import time

from repro.cluster.capping import PrioritizedThrottler
from repro.cluster.power import PowerModel
from repro.cluster.topology import Rack, Server, VirtualMachine

N_SERVERS = 32
CORES_PER_SERVER = 64
VMS_PER_SERVER = 8
RACK_LIMIT_WATTS = 11_800.0
# Recovery setpoint chosen so phase 0 (boost revocation) alone is not
# enough and the prioritized phase must step a few hundred times.
TARGET_WATTS = 11_500.0


def build_overclocked_rack():
    model = PowerModel(cores=CORES_PER_SERVER)
    rack = Rack("bench", RACK_LIMIT_WATTS)
    for i in range(N_SERVERS):
        server = Server(f"s{i}", model)
        for j in range(VMS_PER_SERVER):
            vm = VirtualMachine(CORES_PER_SERVER // VMS_PER_SERVER,
                                utilization=0.9, priority=j,
                                name=f"vm-{i}-{j}")
            server.place_vm(vm)
            server.set_vm_frequency(vm, 4.0)
        rack.add_server(server)
    return rack


def resolve_cap_event(rack):
    start = time.perf_counter()
    throttled, _ = PrioritizedThrottler().throttle(
        rack, target_watts=TARGET_WATTS)
    return time.perf_counter() - start, throttled


def test_incremental_accounting_speeds_up_capping(record_result):
    cached_rack = build_overclocked_rack()
    baseline_rack = build_overclocked_rack()
    assert cached_rack.power_watts() > RACK_LIMIT_WATTS

    # Baseline = the pre-incremental behaviour: every poll re-evaluates
    # the full per-core power model for every server in the rack.
    baseline_rack.power_watts = baseline_rack.recompute_power_watts

    cached_s, cached_throttled = resolve_cap_event(cached_rack)
    baseline_s, baseline_throttled = resolve_cap_event(baseline_rack)

    # Both runs resolve the same event to the same end state.
    assert cached_throttled == baseline_throttled
    assert cached_rack.power_watts() <= TARGET_WATTS
    assert cached_rack.recompute_power_watts() == \
        baseline_rack.recompute_power_watts()

    speedup = baseline_s / cached_s
    print(f"\ncap-event resolution on {N_SERVERS}x{CORES_PER_SERVER} rack: "
          f"cached {cached_s * 1e3:.2f} ms, "
          f"from-scratch {baseline_s * 1e3:.2f} ms, "
          f"speedup {speedup:.1f}x "
          f"({cached_throttled} VMs throttled)")
    record_result("perf_power_accounting",
                  cached_ms=cached_s * 1e3,
                  recompute_ms=baseline_s * 1e3,
                  speedup=speedup,
                  throttled_vms=cached_throttled)
    # Acceptance floor is 5x; the cached path is typically >20x faster.
    assert speedup >= 5.0
