"""Table I — SmartOClock vs Central / NaiveOClock / NoFeedback /
NoWarning across High-/Medium-/Low-power cluster classes."""

from repro.experiments.largescale import format_table1


def test_table1_policy_comparison(benchmark, record_result,
                                  table1_results):
    results = benchmark.pedantic(lambda: table1_results,
                                 rounds=1, iterations=1)
    print("\nTable I — policy comparison")
    print(format_table1(results))

    high = results["High-Power"]
    medium = results["Medium-Power"]
    low = results["Low-Power"]

    # --- High-power clusters (the stressed regime) ----------------------
    # Caps: Naive >> NoWarning > SmartOClock >= NoFeedback >= Central.
    assert high["NaiveOClock"].cap_events > high["NoWarning"].cap_events
    assert high["NoWarning"].cap_events > high["SmartOClock"].cap_events
    assert high["SmartOClock"].cap_events >= high["NoFeedback"].cap_events
    assert high["Central"].cap_events <= high["NoFeedback"].cap_events
    # Success: Central best; SmartOClock best of the practical policies;
    # NaiveOClock worst (paper: 92/89/81/72/55).
    assert high["Central"].success_rate == max(
        s.success_rate for s in high.values())
    assert high["SmartOClock"].success_rate == max(
        s.success_rate for name, s in high.items() if name != "Central")
    assert high["NaiveOClock"].success_rate == min(
        s.success_rate for s in high.values())
    # The headline deltas:
    cap_reduction = 1.0 - (high["SmartOClock"].cap_events
                           / high["NaiveOClock"].cap_events)
    success_gain = (high["SmartOClock"].success_rate
                    - high["NaiveOClock"].success_rate)
    feedback_gain = (high["SmartOClock"].success_rate
                     / high["NoFeedback"].success_rate)
    print(f"cap events cut vs NaiveOClock: {cap_reduction:.1%} "
          f"(paper: up to 94.7%)")
    print(f"success-rate gain vs NaiveOClock: +{success_gain:.1%} "
          f"(paper: up to +34pp / 1.62x)")
    print(f"success vs NoFeedback: {feedback_gain:.2f}x "
          f"(paper: up to 1.24x)")
    assert cap_reduction > 0.5
    assert success_gain > 0.10
    assert feedback_gain > 1.02
    # Penalty on caps: naive's fair-share capping hurts bystanders most.
    assert high["NaiveOClock"].cap_penalty >= max(
        s.cap_penalty for name, s in high.items() if name != "NaiveOClock")
    # Normalized performance tracks success (bounded by 4.0/3.3).
    for s in high.values():
        assert s.normalized_performance <= 4.0 / 3.3 + 1e-9
    assert high["SmartOClock"].normalized_performance > \
        high["NaiveOClock"].normalized_performance

    # --- Medium-power clusters ------------------------------------------
    assert medium["SmartOClock"].success_rate > \
        medium["NoFeedback"].success_rate
    assert medium["SmartOClock"].cap_events < \
        medium["NaiveOClock"].cap_events + 1
    # --- Low-power clusters: everyone succeeds, caps vanish --------------
    assert low["Central"].success_rate > 0.99
    assert low["SmartOClock"].success_rate > 0.95
    assert low["SmartOClock"].cap_events <= low["NaiveOClock"].cap_events

    record_result(
        "table1",
        high_cap_reduction_vs_naive=cap_reduction,
        high_success_smart=high["SmartOClock"].success_rate,
        high_success_central=high["Central"].success_rate,
        high_success_naive=high["NaiveOClock"].success_rate,
        high_success_nofeedback=high["NoFeedback"].success_rate,
        high_success_nowarning=high["NoWarning"].success_rate,
        smart_vs_nofeedback_gain=feedback_gain,
        medium_success_smart=medium["SmartOClock"].success_rate,
        low_success_smart=low["SmartOClock"].success_rate)
