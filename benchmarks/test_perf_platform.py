"""Macro-benchmark: lazy platform accounting vs the eager reference
(ISSUE 10 tentpole).

The eager oracle (``SmartOClockConfig(eager_accounting=True)``) runs the
original per-tick loops: every ``Server.advance`` walks every VM and
core, every sOA runs its full control tick, every channel pumps.  The
lazy fast path coalesces accrual into change-point runs, skips control
work on idle sOAs, and pumps only channels with traffic.  Both paths
are *bit-identical* (see tests/experiments/test_platform_equivalence.py),
so this benchmark runs the same 2-rack x 20-server week twice — lazy
and eager — asserts every observable matches exactly (equality FIRST:
a fast wrong answer is worthless), then gates the speedup.

The scenario is deliberately idle-heavy — one service per rack drives
grants and enforcement while the other 18 servers just burn power —
because that is the fleet shape the lazy path exists for: the eager
loop pays O(servers x cores) every tick regardless of activity.

The CI gate is 3x (shared runners are noisy); quiet machines record
~5x.  The sweep half shards ``chaos_sweep`` over a 4-worker spawn
pool, asserts byte-identical metrics, and records the speedup — gated
only where >= 4 usable CPUs exist (spawn startup dominates on the
1-2 CPU containers this also runs in).
"""

import time

from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Datacenter, Rack, Server, VirtualMachine
from repro.core.config import SmartOClockConfig
from repro.core.platform import SmartOClockPlatform
from repro.core.workload_intelligence import MetricsTriggerPolicy
from repro.experiments.parallel import resolve_workers

N_RACKS = 2
N_SERVERS = 20  # per rack
VM_CORES = 24
TICK_S = 30.0
WEEK_S = 7 * 86400.0
SLO_MS = 10.0

_MODEL = DEFAULT_POWER_MODEL


def _build(eager: bool):
    """One 2-rack fleet: one overclock-hungry service per rack, the
    rest of the servers loaded but control-idle."""
    datacenter = Datacenter("bench")
    servers = []
    busy_watts = _MODEL.uniform_server_watts(0.6, _MODEL.plan.turbo_ghz,
                                             VM_CORES)
    for r in range(N_RACKS):
        rack = Rack(f"r{r}", 1.08 * N_SERVERS * busy_watts)
        for s in range(N_SERVERS):
            server = Server(f"r{r}s{s}", _MODEL)
            rack.add_server(server)
            servers.append(server)
        datacenter.add_rack(rack)
    config = SmartOClockConfig(control_interval_s=TICK_S,
                               eager_accounting=eager)
    platform = SmartOClockPlatform(datacenter, config)
    services = []
    for i, server in enumerate(servers):
        vm = VirtualMachine(VM_CORES, name=f"vm{i}", priority=10,
                            workload=f"w{i}", utilization=0.6)
        server.place_vm(vm)
        if i % N_SERVERS == 0:  # one active service per rack
            agent = platform.register_service(
                f"svc{i}", metrics_policy=MetricsTriggerPolicy(
                    start_fraction=0.7, stop_fraction=0.2, consecutive=2))
            platform.attach_vm(f"svc{i}", vm,
                               target_freq_ghz=_MODEL.plan.overclock_max_ghz,
                               priority=10)
            services.append((agent, vm))
    return platform, datacenter, services


def _run(eager: bool):
    """One simulated week; returns (elapsed_s, observables)."""
    platform, datacenter, services = _build(eager)
    racks = list(datacenter.racks.values())
    ticks = int(WEEK_S / TICK_S)
    power_trajectory: list[tuple[float, ...]] = []
    start = time.perf_counter()
    for i in range(ticks):
        now = i * TICK_S
        # Square-wave load: half of each simulated day runs hot enough
        # to demand overclocking, half idles — change-points for the
        # lazy path, latency pressure for the grant pipeline.
        hot = (i % 2880) < 1440
        for agent, vm in services:
            vm.set_utilization(0.8 if hot else 0.5)
            agent.observe(now, 8.0 if hot else 2.0, SLO_MS)
        platform.tick(now, TICK_S)
        power_trajectory.append(tuple(r.power_watts() for r in racks))
    elapsed = time.perf_counter() - start
    wear = [counter.state_dict()
            for soa in platform.soas.values()
            for counter in soa.wear_counters]
    cores = [(core.busy_seconds, core.overclock_seconds)
             for rack in racks for server in rack.servers
             for core in server.cores]
    observables = {
        "fault_counters": platform.fault_counters(),
        "grant_statistics": platform.grant_statistics(),
        "channel_statistics": platform.channel_statistics(),
        "power_trajectory": power_trajectory,
        "wear": wear,
        "cores": cores,
    }
    return elapsed, observables


def test_lazy_platform_week_speedup(record_result):
    lazy_s, lazy = _run(eager=False)
    eager_s, eager = _run(eager=True)

    # Equality first, field by field, before any timing matters.
    for key in eager:
        assert lazy[key] == eager[key], f"eager/lazy diverged on {key}"

    speedup = eager_s / lazy_s
    print(f"\nPlatform week, {N_RACKS}x{N_SERVERS} servers x "
          f"{int(WEEK_S / TICK_S)} ticks: eager {eager_s:.2f} s, "
          f"lazy {lazy_s:.2f} s ({speedup:.1f}x)")
    record_result("perf_platform",
                  eager_s=eager_s,
                  lazy_s=lazy_s,
                  speedup=speedup,
                  servers=N_RACKS * N_SERVERS,
                  ticks=int(WEEK_S / TICK_S))
    # CI floor (quiet machines record ~5x).
    assert speedup >= 3.0


def test_chaos_sweep_4worker_speedup(record_result):
    from repro.experiments.chaos import chaos_sweep

    trials = 8
    start = time.perf_counter()
    serial = chaos_sweep(trials, seed=3, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = chaos_sweep(trials, seed=3, workers=4)
    pooled_s = time.perf_counter() - start

    # The deterministic merge must be exact before timing counts.
    assert pooled == serial
    assert pooled.metrics() == serial.metrics()

    sweep_speedup = serial_s / pooled_s
    cpus = resolve_workers(None)
    print(f"\nChaos sweep, {trials} trials: serial {serial_s:.2f} s, "
          f"4-worker pool {pooled_s:.2f} s ({sweep_speedup:.1f}x, "
          f"{cpus} usable CPUs)")
    record_result("perf_platform",
                  sweep_trials=trials,
                  sweep_serial_s=serial_s,
                  sweep_pooled_s=pooled_s,
                  sweep_speedup=sweep_speedup,
                  sweep_workers=4,
                  usable_cpus=cpus)
    # Spawn startup (~1 s/worker: fresh interpreter + numpy import)
    # swamps these short trials unless real parallelism exists; gate
    # only where the pool can actually spread out.
    if cpus >= 4:
        assert sweep_speedup >= 1.5
