"""Macro-benchmark: vectorized Table-I sweep vs the scalar reference
(ISSUE 5 tentpole).

The scalar oracle (``simulate_rack_reference``) walks the trace one
5-minute tick at a time; the fast path plans week/segment-sized NumPy
blocks and falls back to scalar ticks only around warnings/caps.  Both
paths are *bit-identical* (see tests/experiments/test_fastpath.py), so
this benchmark times the same ``table1`` sweep three ways — scalar,
vectorized, and vectorized through the process-pool harness — asserts
all three produce equal scores, and records the speedup.

The CI gate is 3x (shared runners are noisy); quiet machines record
4-6x depending on load (the sweep includes SmartOClock+OSub, whose
admitted headroom raises cap counts on the high-power class — cap
ticks are the scalar-fallback path).
"""

import time

from repro.experiments.largescale import (
    TABLE1_POLICIES,
    cluster_class_fleets,
    format_table1,
    table1,
)

#: Same generator/seed family as the shared ``table1_results`` CI fleet,
#: at a third of the racks: the scalar reference is what's being timed,
#: and 18 racks of it would dominate the whole benchmark session.
N_RACKS = 2
WEEKS = 3
SEED = 1


def test_vectorized_sweep_speedup(record_result):
    fleets = cluster_class_fleets(n_racks=N_RACKS, weeks=WEEKS, seed=SEED)

    start = time.perf_counter()
    vectorized = table1(fleets, fast=True, workers=1)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    reference = table1(fleets, fast=False, workers=1)
    reference_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = table1(fleets, fast=True, workers=2)
    pooled_s = time.perf_counter() - start

    # All three paths must agree exactly — same PolicyScores, same
    # rendered table — before any timing is worth recording.
    assert vectorized == reference
    assert pooled == vectorized
    assert format_table1(pooled) == format_table1(reference)

    speedup = reference_s / vectorized_s
    n_racks_total = sum(len(f.racks) for f in fleets.values())
    print(f"\nTable-I sweep, {n_racks_total} racks x "
          f"{len(TABLE1_POLICIES)} policies x "
          f"{WEEKS} weeks: scalar {reference_s:.2f} s, "
          f"vectorized {vectorized_s:.2f} s ({speedup:.1f}x), "
          f"2-worker pool {pooled_s:.2f} s")
    record_result("perf_largescale",
                  reference_s=reference_s,
                  vectorized_s=vectorized_s,
                  speedup=speedup,
                  pool_workers=2,
                  pooled_s=pooled_s,
                  racks=n_racks_total,
                  weeks=WEEKS)
    # CI floor (acceptance target is 5x on a quiet machine; shared
    # runners get the conservative gate).
    assert speedup >= 3.0
