"""Fig. 8 — CDF of rack power-prediction RMSE across four regions."""


def test_fig08_prediction_rmse(benchmark, record_result):
    from repro.experiments.characterization import (
        fig8_prediction_rmse_by_region,
    )

    cdfs = benchmark.pedantic(
        lambda: fig8_prediction_rmse_by_region(n_racks=20, seed=31),
        rounds=1, iterations=1)

    print("\nFig. 8 — DailyMed rack-power RMSE per server (W)")
    for name, cdf in cdfs.items():
        print(f"  {name}: P50={cdf.value_at(0.5):5.2f}  "
              f"P90={cdf.value_at(0.9):5.2f}  "
              f"P99={cdf.value_at(0.99):5.2f}")

    # Paper: RMSE is low even at high percentiles, across all regions
    # (e.g. Region 3: P50 < 1.95 W, P99 < 5.11 W per-rack on 24-32-server
    # racks — watt-scale errors).  Our per-server normalization keeps the
    # same order of magnitude.
    values = list(cdfs.values())
    for cdf in values:
        assert cdf.value_at(0.5) < 15.0
        assert cdf.value_at(0.99) < 40.0
    # Quieter regions predict better than noisier ones.
    assert values[0].value_at(0.5) < values[-1].value_at(0.5)
    record_result("fig08", **{
        name.replace(" ", "_").lower() + "_p50": cdf.value_at(0.5)
        for name, cdf in cdfs.items()})
