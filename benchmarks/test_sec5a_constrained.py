"""§V-A constrained studies: power-constrained (NaiveOClock vs
SmartOClock) and overclocking-budget-constrained (reactive vs proactive
scale-out)."""

from repro.experiments.cluster import (
    ClusterConfig,
    overclock_constrained_experiment,
    power_constrained_experiment,
)


def test_power_constrained(benchmark, record_result):
    config = ClusterConfig(duration_s=5400.0)
    results = benchmark.pedantic(
        lambda: power_constrained_experiment(config),
        rounds=1, iterations=1)

    print("\n§V-A power-constrained: NaiveOClock vs SmartOClock")
    for name, result in results.items():
        high = result.per_class["high"]
        medium = result.per_class["medium"]
        print(f"  {name:<12} med p99={medium.p99_ms:6.1f}ms "
              f"high p99={high.p99_ms:7.1f}ms "
              f"MLTrain={result.ml_throughput:7.1f} samples/s "
              f"caps={result.cap_events}")

    naive, smart = results["NaiveOClock"], results["SmartOClock"]
    ml_gain = smart.ml_throughput / naive.ml_throughput - 1.0
    print(f"  MLTrain throughput gain: +{ml_gain:.1%} (paper: +10.4%)")

    # Paper findings: admission control + heterogeneous budgeting avoid
    # the capping events entirely, protecting the MLTrain bystanders
    # (paper: +10.4% throughput, tail reduced 6.7-8.4%).
    assert naive.cap_events > 0
    assert smart.cap_events < naive.cap_events
    assert smart.ml_throughput > naive.ml_throughput
    assert smart.per_class["medium"].p99_ms <= \
        naive.per_class["medium"].p99_ms * 1.05
    record_result("sec5a_power",
                  naive_caps=naive.cap_events, smart_caps=smart.cap_events,
                  ml_throughput_gain=ml_gain, paper_ml_gain=0.104)


def test_overclock_constrained(benchmark, record_result):
    config = ClusterConfig(duration_s=5400.0)
    results = benchmark.pedantic(
        lambda: overclock_constrained_experiment(
            config, budget_scales=(0.75, 0.50, 0.25)),
        rounds=1, iterations=1)

    print("\n§V-A overclocking-constrained: missed-SLO time fraction")
    print(f"  {'budget':<8}{'reactive':>10}{'proactive':>11}")
    for scale, row in results.items():
        print(f"  {scale:<8.2f}{row['reactive']:>10.3f}"
              f"{row['proactive']:>11.3f}")

    # Paper findings: with restricted budgets, reactive scale-out misses
    # the SLO for 5.0-7.2 % of time; proactive scale-out (exhaustion
    # prediction 15 minutes ahead) eliminates the extra misses.
    for scale, row in results.items():
        assert row["proactive"] <= row["reactive"] + 1e-9
    gaps = {scale: row["reactive"] - row["proactive"]
            for scale, row in results.items()}
    assert max(gaps.values()) > 0.0
    record_result("sec5a_budget", **{
        f"gap_at_{int(scale * 100)}pct": gap
        for scale, gap in gaps.items()})
