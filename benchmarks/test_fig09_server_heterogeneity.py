"""Fig. 9 — normalized power of six servers in one rack over a week."""

import numpy as np


def test_fig09_server_heterogeneity(benchmark, record_result):
    from repro.experiments.characterization import (
        dominant_server_changes,
        fig9_server_heterogeneity,
    )

    series = benchmark.pedantic(fig9_server_heterogeneity,
                                rounds=1, iterations=1)

    print("\nFig. 9 — normalized server power (12-hourly means)")
    for name, values in series.items():
        n = len(values)
        chunk = max(1, n // 14)
        means = [float(np.mean(values[i:i + chunk]))
                 for i in range(0, n, chunk)]
        print(f"  {name}: " + " ".join(f"{v:4.2f}" for v in means))

    matrix = np.stack(list(series.values()))
    spread = matrix.max(axis=0) - matrix.min(axis=0)
    changes = dominant_server_changes(series)
    print(f"  max spread between servers: {spread.max():.2f} "
          f"(paper: >= 0.30)")
    print(f"  dominant-server changes over the week: {changes}")

    # Paper findings: servers differ by >= 30 % and the power-dominant
    # server changes over time — fair static splits are inefficient.
    assert spread.max() >= 0.30
    assert changes >= 2
    record_result("fig09", max_spread=float(spread.max()),
                  dominant_changes=changes)
