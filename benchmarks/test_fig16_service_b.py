"""Fig. 16 — Service B: CPU utilization vs request rate, with and without
overclocking."""


def test_fig16_service_b(benchmark, record_result):
    from repro.experiments.production import fig16_service_b

    result = benchmark(fig16_service_b)

    print("\nFig. 16 — Service B utilization by request rate")
    print("  RPS   :", " ".join(f"{r:6.0f}" for r in result.rps_buckets))
    print("  base  :", " ".join(f"{u:6.2f}" for u in result.baseline_util))
    print("  oclock:", " ".join(f"{u:6.2f}"
                                for u in result.overclocked_util))
    print(f"  util reduction at {result.peak_rps:.0f} RPS: "
          f"{result.util_reduction_at_peak:.1%} (paper: 23%)")
    print(f"  iso-utilization RPS gain: "
          f"{result.iso_util_rps_gain:.1%} (paper: 28%)")

    # Paper findings: overclocking reduces utilization at peak load and,
    # equivalently, serves more RPS at the same utilization — the
    # down-provisioning opportunity.  (Our 3.3→4.0 GHz frequency-scaling
    # model bounds the reduction at ~17.5 %; the paper's 23 % implies
    # additional microarchitectural benefit we do not model.)
    assert 0.12 <= result.util_reduction_at_peak <= 0.25
    assert 0.15 <= result.iso_util_rps_gain <= 0.30
    assert all(oc < base for oc, base in
               zip(result.overclocked_util, result.baseline_util))
    record_result("fig16",
                  util_reduction=result.util_reduction_at_peak,
                  paper_util_reduction=0.23,
                  iso_rps_gain=result.iso_util_rps_gain,
                  paper_iso_rps_gain=0.28)
