"""Ablation — power-aware VM placement (the paper's §III Q2 future work).

Quantifies how much a power-aware scheduler flattens per-server power —
and therefore how much more admissible overclocking headroom each server's
fair-share/heterogeneous budget contains."""

import numpy as np

from repro.cluster.placement import PowerAwarePlacer, ResourceCentricPlacer
from repro.cluster.power import DEFAULT_POWER_MODEL
from repro.cluster.topology import Rack, Server, VirtualMachine


def build_pool(n=8):
    return [Server(f"s{i}", DEFAULT_POWER_MODEL) for i in range(n)]


def place_fleet(placer, seed=7, n_vms=40):
    rng = np.random.default_rng(seed)
    pool = build_pool()
    for i in range(n_vms):
        vm = VirtualMachine(int(rng.integers(2, 13)),
                            utilization=float(rng.uniform(0.2, 1.0)))
        placer.place(vm, pool)
    return pool


def per_server_admissible(pool, rack_limit):
    """Per-server admissible overclocked cores under fair-share budgets."""
    share = rack_limit / len(pool)
    delta = DEFAULT_POWER_MODEL.overclock_core_delta(1.0)
    return [max(0, int((share - server.power_watts()) / delta))
            for server in pool]


def test_ablation_placement(benchmark, record_result):
    def sweep():
        out = {}
        for name, placer in (("resource-centric", ResourceCentricPlacer()),
                              ("power-aware", PowerAwarePlacer())):
            pool = place_fleet(placer)
            powers = [s.power_watts() for s in pool]
            rack_limit = 1.1 * sum(powers)
            admissible = per_server_admissible(pool, rack_limit)
            out[name] = {
                "imbalance_w": max(powers) - min(powers),
                "min_admissible": min(admissible),
                "locked_out": sum(1 for a in admissible if a == 0),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — VM placement policy")
    for name, row in results.items():
        print(f"  {name:<17} imbalance={row['imbalance_w']:6.1f}W "
              f"min admissible OC cores/server={row['min_admissible']} "
              f"servers locked out={row['locked_out']}")

    # Power-aware placement flattens server power, so *every* server
    # retains local overclocking headroom under its fair-share budget;
    # first-fit leaves its hottest servers locked out entirely (they can
    # only overclock through exploration).
    assert results["power-aware"]["imbalance_w"] < \
        results["resource-centric"]["imbalance_w"]
    assert results["power-aware"]["min_admissible"] >= \
        results["resource-centric"]["min_admissible"]
    assert results["power-aware"]["locked_out"] <= \
        results["resource-centric"]["locked_out"]
    record_result(
        "ablation_placement",
        resource_centric_imbalance=results["resource-centric"]["imbalance_w"],
        power_aware_imbalance=results["power-aware"]["imbalance_w"],
        resource_centric_locked_out=results["resource-centric"]["locked_out"],
        power_aware_locked_out=results["power-aware"]["locked_out"])
