"""Fig. 7 — CPU ageing over 5 days under four overclocking policies."""


def test_fig07_aging_policies(benchmark, record_result):
    from repro.experiments.characterization import fig7_aging_policies

    series = benchmark(fig7_aging_policies, 5)

    print("\nFig. 7 — cumulative CPU ageing (days of wear after 5 days)")
    finals = {}
    for name, curve in series.items():
        finals[name] = float(curve[-1])
        print(f"  {name:<18} {finals[name]:6.2f} days")

    # Paper findings:
    # - expected ageing = wall-clock (5 days over 5 days);
    # - the non-overclocked baseline ages < 2 days (credits accumulate);
    # - always-overclock ages the part by > 10 days;
    # - the overclock-aware policy consumes credits while staying within
    #   the expected ageing envelope.
    assert finals["Expected ageing"] == 5.0 or \
        abs(finals["Expected ageing"] - 5.0) < 0.05
    assert finals["Non-overclocked"] < 2.0
    assert finals["Always overclock"] > 10.0
    assert finals["Overclock-aware"] <= 5.0 * 1.02
    assert finals["Overclock-aware"] > finals["Non-overclocked"]
    record_result("fig07", **{k.replace(" ", "_").replace("-", "_"): v
                              for k, v in finals.items()})
