"""Fig. 14 — normalized per-server energy by load class, plus total
system energy."""

from repro.experiments.cluster import ENVIRONMENTS


def test_fig14_cluster_energy(benchmark, record_result, cluster_results):
    results = benchmark.pedantic(lambda: cluster_results,
                                 rounds=1, iterations=1)

    base_energy = {
        cls: results["Baseline"].per_class[cls].home_server_energy_j
        for cls in ("low", "medium", "high")}
    base_total = results["Baseline"].total_energy_j

    print("\nFig. 14 — energy normalized to Baseline")
    print(f"{'environment':<13}" + "".join(
        f"{cls:>9}" for cls in ("low", "medium", "high")) + f"{'total':>9}")
    for env in ENVIRONMENTS:
        row = results[env]
        cells = "".join(
            f"{row.per_class[cls].home_server_energy_j / base_energy[cls]:9.3f}"
            for cls in ("low", "medium", "high"))
        print(f"{env:<13}{cells}{row.total_energy_j / base_total:9.3f}")

    smart = results["SmartOClock"]
    scale_out = results["ScaleOut"]
    scale_up = results["ScaleUp"]

    # Paper findings:
    # (1) Overclocking raises per-server energy with load (ScaleUp and
    # SmartOClock burn more on their home servers at high load).
    assert scale_up.per_class["high"].home_server_energy_j > \
        base_energy["high"]
    assert smart.per_class["high"].home_server_energy_j > \
        smart.per_class["low"].home_server_energy_j
    # (2) SmartOClock's *total* energy does not exceed ScaleOut's (it
    # uses fewer instances, so fewer servers burn idle power).
    assert smart.total_energy_j <= scale_out.total_energy_j * 1.01
    total_saving = 1.0 - smart.total_energy_j / scale_out.total_energy_j
    print(f"SmartOClock total-energy saving vs ScaleOut: "
          f"{total_saving:.2%} (paper: ~10%)")
    record_result("fig14", total_energy_saving_vs_scaleout=total_saving,
                  paper_total_energy_saving=0.10)
