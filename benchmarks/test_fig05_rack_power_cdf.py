"""Fig. 5 — CDF of average / P50 / P99 rack power utilization across the
fleet (paper: 7.1k racks over 6 weeks; here a scaled synthetic fleet)."""


def test_fig05_rack_power_cdf(benchmark, record_result):
    from repro.experiments.characterization import fig5_rack_power_cdf

    cdfs = benchmark.pedantic(
        lambda: fig5_rack_power_cdf(n_racks=120, weeks=2, seed=11),
        rounds=1, iterations=1)

    print("\nFig. 5 — rack power utilization CDF")
    fractions = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    for name in ("avg", "p50", "p99"):
        row = " ".join(f"{cdfs[name].value_at(f):5.2f}" for f in fractions)
        print(f"  {name:>4} at CDF {fractions}: {row}")

    median_avg = cdfs["avg"].value_at(0.5)
    median_p99 = cdfs["p99"].value_at(0.5)
    p90_of_p99 = cdfs["p99"].value_at(0.9)
    print(f"  median avg util = {median_avg:.2f}  (paper: < 0.66)")
    print(f"  median P99 util = {median_p99:.2f}  (paper: < 0.73)")
    print(f"  90th-pct P99    = {p90_of_p99:.2f}  (paper: < 0.89)")

    # Paper: half the racks average below 66 %; 50 %/90 % of racks have
    # P99 below 73 %/89 % — substantial headroom for overclocking.
    assert median_avg < 0.75
    assert median_p99 < 0.85
    assert p90_of_p99 < 0.95
    assert cdfs["avg"].value_at(0.5) < cdfs["p50"].value_at(0.5) + 0.1
    record_result("fig05", median_avg_util=median_avg,
                  median_p99_util=median_p99, p90_p99_util=p90_of_p99)
