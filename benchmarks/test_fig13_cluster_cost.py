"""Fig. 13 — average number of concurrently active VM instances (the
application-cost metric)."""

from repro.experiments.cluster import ENVIRONMENTS


def test_fig13_cluster_cost(benchmark, record_result, cluster_results):
    results = benchmark.pedantic(lambda: cluster_results,
                                 rounds=1, iterations=1)

    print("\nFig. 13 — average concurrent instances by load class")
    print(f"{'environment':<13}" + "".join(
        f"{cls:>10}" for cls in ("low", "medium", "high")))
    for env in ENVIRONMENTS:
        cells = "".join(
            f"{results[env].per_class[cls].avg_instances:10.2f}"
            for cls in ("low", "medium", "high"))
        print(f"{env:<13}{cells}")

    smart_high = results["SmartOClock"].per_class["high"].avg_instances
    so_high = results["ScaleOut"].per_class["high"].avg_instances
    saving = 1.0 - smart_high / so_high
    print(f"SmartOClock instance saving vs ScaleOut at high load: "
          f"{saving:.1%} (paper: 30.4%)")

    # Paper findings:
    # (1) Baseline / ScaleUp never add instances.
    for env in ("Baseline", "ScaleUp"):
        for cls in ("low", "medium", "high"):
            assert results[env].per_class[cls].avg_instances == 1.0
    # (2) SmartOClock substantially reduces the instances ScaleOut needs
    # at high load (overclocking absorbs load that would otherwise
    # trigger a scale-out).
    assert saving >= 0.15
    # (3) And at medium load too.
    assert results["SmartOClock"].per_class["medium"].avg_instances <= \
        results["ScaleOut"].per_class["medium"].avg_instances
    record_result("fig13", instance_saving_high=saving,
                  paper_instance_saving=0.304,
                  smart_high_instances=smart_high,
                  scaleout_high_instances=so_high)
