"""Fig. 1 — load pattern of Services A/B/C on a typical weekday."""

import numpy as np


def test_fig01_load_patterns(benchmark, record_result):
    from repro.experiments.characterization import fig1_load_patterns

    patterns = benchmark(fig1_load_patterns)

    print("\nFig. 1 — normalized weekday load (hourly means)")
    hours_axis = np.arange(24)
    for name, (hours, levels) in patterns.items():
        hourly = [float(np.mean(levels[(hours >= h) & (hours < h + 1)]))
                  for h in hours_axis]
        row = " ".join(f"{v:4.2f}" for v in hourly)
        print(f"  {name}: {row}")

    a_hours, a_levels = patterns["Service A"]
    peak_window = a_levels[(a_hours >= 10) & (a_hours <= 12)]
    off_peak = a_levels[(a_hours >= 0) & (a_hours <= 6)]
    # Paper: Service A peaks 10am-noon for a few hours a day.
    assert peak_window.min() > 0.99
    assert off_peak.max() < 0.5

    b_hours, b_levels = patterns["Service B"]
    minute = (b_hours * 60.0) % 60.0
    spikes = b_levels[minute < 5.0]
    valleys = b_levels[(minute >= 10) & (minute < 25)]
    # Paper: 5 minutes at the top of the hour dominate provisioning.
    assert spikes.mean() > 1.5 * valleys.mean()

    record_result("fig01",
                  service_a_peak=float(peak_window.mean()),
                  service_b_spike_ratio=float(spikes.mean()
                                              / valleys.mean()))
