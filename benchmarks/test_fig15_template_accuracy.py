"""Fig. 15 — CDF of power-prediction error for the five template-creation
strategies; DailyMed (SmartOClock's choice) wins."""

import numpy as np

from repro.prediction.predictor import evaluate_template
from repro.prediction.templates import TemplateKind
from repro.sim.metrics import Cdf
from repro.traces.synthetic import FleetConfig, generate_fleet

WEEK = 7 * 86400.0


def sweep_templates():
    fleet = generate_fleet(FleetConfig(n_racks=30, weeks=2, seed=15))
    errors = {kind: [] for kind in TemplateKind}
    for rack in fleet.racks:
        power = rack.total_power()
        t = rack.times
        hist = t < WEEK
        for kind in TemplateKind:
            ev = evaluate_template(kind, t[hist], power[hist],
                                   t[~hist], power[~hist])
            errors[kind].append(ev.rmse / len(rack.servers))
    return {kind: Cdf(values) for kind, values in errors.items()}


def test_fig15_template_accuracy(benchmark, record_result):
    cdfs = benchmark.pedantic(sweep_templates, rounds=1, iterations=1)

    print("\nFig. 15 — per-server RMSE (W) of rack power predictions")
    for kind, cdf in cdfs.items():
        print(f"  {kind.value:<9} P50={cdf.value_at(0.5):7.2f}  "
              f"P90={cdf.value_at(0.9):7.2f}  "
              f"P99={cdf.value_at(0.99):7.2f}")

    medians = {kind: cdf.value_at(0.5) for kind, cdf in cdfs.items()}
    # Paper findings:
    # (1) DailyMed has the best accuracy (SmartOClock's choice).
    assert medians[TemplateKind.DAILY_MED] == min(medians.values())
    # (2) Flat templates are far worse than time-of-day-aware ones.
    assert medians[TemplateKind.FLAT_MED] > \
        2 * medians[TemplateKind.DAILY_MED]
    assert medians[TemplateKind.FLAT_MAX] > \
        2 * medians[TemplateKind.DAILY_MED]
    # (3) Weekly replay is hurt by outlier days relative to DailyMed.
    assert cdfs[TemplateKind.WEEKLY].value_at(0.9) > \
        cdfs[TemplateKind.DAILY_MED].value_at(0.9)
    record_result("fig15", **{
        kind.value: median for kind, median in medians.items()})
