"""Fleet-scale sweep under bounded driver memory (ISSUE 6 tentpole).

The paper's trace-driven evaluation covers 7.1k racks (§V-B).  The
seed-sharded streaming sweep ships ~100-byte ``RackSpec`` recipes to
workers and folds results online, so the driver's peak RSS must stay
essentially *flat* as the fleet grows — where the old path (materialize
every ``RackTrace``, hold every result) grew linearly, ~19 GB at 7.1k
racks.

Each measured run executes ``repro table1`` in a fresh subprocess
(``fleet_driver.py``) that reports its own wall-clock and peak RSS;
pool workers are separate processes and intentionally excluded.  The CI
gate compares a 200-racks-per-class run (600 racks total, scaled for CI
time) against a 20-per-class baseline and asserts the ratio stays
within a flat-memory tolerance.  The full 7.1k-rack run is opt-in
(``REPRO_FLEET_FULL=1``); its numbers are recorded in
``latest_results.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DRIVER = REPO / "benchmarks" / "fleet_driver.py"
SRC = REPO / "src"

#: Racks per cluster class (the CLI builds three classes).
CI_SMALL = 20
CI_LARGE = 200
#: 2367 per class x 3 classes = 7101 racks — the paper's 7.1k.
FULL_PER_CLASS = 2367

#: Driver RSS is dominated by the interpreter + NumPy either way; a
#: 10x fleet may only add the in-flight window of results.  The old
#: materializing path was ~10x the baseline at CI_LARGE already.
FLAT_RSS_TOLERANCE = 1.5


def run_table1(racks: int, *, workers: int = 2, weeks: int = 2,
               timeout_s: float = 3600.0) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, str(DRIVER), "table1", "--racks", str(racks),
         "--weeks", str(weeks), "--workers", str(workers), "--seed", "1"],
        capture_output=True, text=True, timeout=timeout_s, env=env)
    assert proc.returncode == 0, proc.stderr
    out_lines = proc.stdout.strip().splitlines()
    stats = json.loads(out_lines[-1])
    # The table itself still printed (the driver wraps the real CLI).
    assert any("SmartOClock" in line for line in out_lines)
    stats["racks_per_class"] = racks
    stats["racks_total"] = 3 * racks
    stats["workers"] = workers
    return stats


def test_driver_rss_flat_in_fleet_size(record_result):
    small = run_table1(CI_SMALL)
    large = run_table1(CI_LARGE)
    ratio = large["driver_peak_rss_kb"] / small["driver_peak_rss_kb"]
    print(f"\ntable1 driver: {small['racks_total']} racks -> "
          f"{small['driver_peak_rss_kb'] / 1024:.0f} MiB, "
          f"{small['elapsed_s']:.1f} s; "
          f"{large['racks_total']} racks -> "
          f"{large['driver_peak_rss_kb'] / 1024:.0f} MiB, "
          f"{large['elapsed_s']:.1f} s (RSS ratio {ratio:.2f}x "
          f"for a {CI_LARGE // CI_SMALL}x fleet)")
    record_result("perf_fleetscale",
                  small_racks=small["racks_total"],
                  small_rss_mib=small["driver_peak_rss_kb"] / 1024,
                  small_elapsed_s=small["elapsed_s"],
                  large_racks=large["racks_total"],
                  large_rss_mib=large["driver_peak_rss_kb"] / 1024,
                  large_elapsed_s=large["elapsed_s"],
                  rss_ratio=ratio,
                  workers=large["workers"])
    # Sub-linear-memory gate: a 10x fleet must not cost 10x driver RSS —
    # it must stay essentially flat (window-bounded), CI-noise tolerant.
    assert ratio <= FLAT_RSS_TOLERANCE, (
        f"driver RSS grew {ratio:.2f}x for a 10x fleet "
        f"(limit {FLAT_RSS_TOLERANCE}x): streaming regression?")


@pytest.mark.skipif(not os.environ.get("REPRO_FLEET_FULL"),
                    reason="full 7.1k-rack run is opt-in "
                           "(REPRO_FLEET_FULL=1); takes ~1 h")
def test_full_paper_scale_fleet(record_result):
    """The paper-scale run: 7101 racks, 2 weeks, bounded driver RSS."""
    baseline = run_table1(CI_SMALL)
    full = run_table1(FULL_PER_CLASS, timeout_s=4 * 3600.0)
    ratio = full["driver_peak_rss_kb"] / baseline["driver_peak_rss_kb"]
    print(f"\n7.1k-rack table1: {full['racks_total']} racks in "
          f"{full['elapsed_s'] / 60:.1f} min, driver peak RSS "
          f"{full['driver_peak_rss_kb'] / 1024:.0f} MiB "
          f"({ratio:.2f}x the {baseline['racks_total']}-rack baseline)")
    record_result("perf_fleet7100",
                  racks=full["racks_total"],
                  weeks=2,
                  workers=full["workers"],
                  elapsed_s=full["elapsed_s"],
                  driver_peak_rss_mib=full["driver_peak_rss_kb"] / 1024,
                  rss_vs_60_rack_baseline=ratio)
    assert ratio <= FLAT_RSS_TOLERANCE
