"""Ablation — offline epoch budgets vs online wear counters (§VI).

The paper's deployed system uses an offline vendor analysis (a fixed 10 %
share of time); §VI argues wear-out counters unlock a *per-part* online
calculation.  This bench quantifies the difference across utilization
levels: counters are more permissive on lightly-loaded parts and stricter
on hot ones.
"""

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.reliability.aging import DEFAULT_AGING_MODEL
from repro.reliability.online_wear import OnlineWearBudget
from repro.reliability.wearout import CoreWearoutCounter

V_OC = DEFAULT_FREQUENCY_PLAN.voltage(4.0)
OFFLINE_FRACTION = 0.10
HOUR = 3600.0


def sweep():
    out = {}
    for utilization in (0.2, 0.35, 0.5, 0.7, 0.9):
        counter = CoreWearoutCounter(DEFAULT_AGING_MODEL)
        counter.accumulate(24 * HOUR, utilization, 1.05)
        budget = OnlineWearBudget(counter, warmup_seconds=0.0)
        out[utilization] = budget.sustainable_fraction(utilization, V_OC)
    return out


def test_ablation_online_wear(benchmark, record_result):
    fractions = benchmark(sweep)

    print("\nAblation — sustainable overclock share: "
          f"offline fixed {OFFLINE_FRACTION:.0%} vs online counters")
    for utilization, fraction in fractions.items():
        marker = ">" if fraction > OFFLINE_FRACTION else "<"
        print(f"  util={utilization:.2f}: online={fraction:6.1%} "
              f"{marker} offline={OFFLINE_FRACTION:.0%}")

    # Lightly-loaded parts can overclock for MORE than the offline share;
    # hot parts must overclock for LESS — the §VI motivation.
    assert fractions[0.2] > OFFLINE_FRACTION
    assert fractions[0.9] < OFFLINE_FRACTION
    # Monotone: hotter parts sustain less overclocking.
    values = list(fractions.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    record_result("ablation_online_wear", **{
        f"util_{int(u * 100)}": f for u, f in fractions.items()})
