"""Micro-benchmark: ``repro lint src`` wall-clock (ISSUE 7 satellite).

PR 7 added an interprocedural effect-inference pass (summaries + call
graph + fixpoint) and paid for it with the one-pass node index in
``ModuleContext``: rules that each re-walked every module tree now read
``ctx.nodes_of_type(...)`` from a single shared walk.  This benchmark
times the full lint of ``src/`` and the same run with the three effect
rules deselected (the seed rule set, which never triggers the lazy
``EffectAnalysis`` build), asserts the interprocedural pass stays a
bounded fraction of the run, and records both numbers so
``latest_results.json`` tracks lint wall-clock across PRs.

The CI gates are deliberately loose (shared runners are noisy); the
committed numbers are the acceptance reference: ~0.9 s full, ~1.4x
over the seed rule set for the 86-file tree.
"""

import time
from pathlib import Path

from repro.analysis import LintConfig, lint_paths
from repro.analysis.registry import all_rules

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
EFFECT_RULES = frozenset(
    {"purity-stateless-tick", "warning-hook-inert", "spawn-purity"})

#: Absolute ceiling for one full lint of src/ on a cold cache.  The
#: seed lint of the same tree sat well under this; a superlinear
#: regression in the fixpoint or the node index blows through it.
FULL_RUN_CEILING_S = 10.0
#: The effect pass may not more than triple the seed-rule wall-clock.
MAX_EFFECT_OVERHEAD = 3.0


def _best_of(n: int, config: LintConfig) -> tuple[float, int]:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        result = lint_paths([REPO_SRC], config)
        best = min(best, time.perf_counter() - start)
        assert result.exit_code == 0
    return best, result.files_checked


def test_lint_wall_clock_and_effect_pass_overhead(record_result):
    seed_rules = frozenset(set(all_rules()) - EFFECT_RULES)
    assert EFFECT_RULES <= set(all_rules())

    # Warm import/bytecode caches so both configs time the same work.
    lint_paths([REPO_SRC], LintConfig())

    full_s, files = _best_of(3, LintConfig())
    seed_s, _ = _best_of(3, LintConfig(select=seed_rules))

    overhead = full_s / seed_s if seed_s else 1.0
    print(f"\nrepro lint src ({files} files): full {full_s:.3f} s, "
          f"seed rule set {seed_s:.3f} s "
          f"(effect-pass overhead {overhead:.2f}x)")

    assert full_s < FULL_RUN_CEILING_S
    assert overhead < MAX_EFFECT_OVERHEAD
    record_result("perf_lint",
                  files_checked=files,
                  full_run_s=full_s,
                  seed_rules_s=seed_s,
                  effect_pass_overhead_x=overhead)
