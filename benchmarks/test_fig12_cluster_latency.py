"""Fig. 12 — P99 tail and average latency of the SocialNet services in
the four cluster environments (Baseline / ScaleOut / ScaleUp /
SmartOClock) at three load levels."""

from repro.experiments.cluster import ENVIRONMENTS


def test_fig12_cluster_latency(benchmark, record_result, cluster_results):
    results = benchmark.pedantic(lambda: cluster_results,
                                 rounds=1, iterations=1)

    print("\nFig. 12 — P99 / mean latency (ms) by load class")
    print(f"{'environment':<13}" + "".join(
        f"{cls:>22}" for cls in ("low", "medium", "high")))
    for env in ENVIRONMENTS:
        row = results[env]
        cells = "".join(
            f"{row.per_class[cls].p99_ms:11.1f}/"
            f"{row.per_class[cls].mean_ms:<10.1f}"
            for cls in ("low", "medium", "high"))
        print(f"{env:<13}{cells}")

    high = {env: results[env].per_class["high"] for env in ENVIRONMENTS}
    reductions = {
        env: 1.0 - high["SmartOClock"].p99_ms / high[env].p99_ms
        for env in ("Baseline", "ScaleOut", "ScaleUp")}
    miss_ratios = {
        env: high[env].missed_slo_fraction
        / max(high["SmartOClock"].missed_slo_fraction, 1e-9)
        for env in ("Baseline", "ScaleOut", "ScaleUp")}
    print(f"SmartOClock P99 reduction at high load: {reductions} "
          f"(paper: 19.0% / 10.5% / 8.9%)")
    print(f"missed-SLO ratio vs SmartOClock:        {miss_ratios} "
          f"(paper: 26x / 4.8x / 2.3x)")

    # Paper findings:
    # (1) Low load: all systems perform equally well.
    low_p99 = [results[env].per_class["low"].p99_ms
               for env in ENVIRONMENTS]
    assert max(low_p99) <= min(low_p99) * 1.3
    # (2) At high load SmartOClock has the lowest tail latency.
    assert all(high["SmartOClock"].p99_ms < high[env].p99_ms
               for env in ("Baseline", "ScaleOut", "ScaleUp"))
    # (3) SmartOClock misses far fewer SLOs than Baseline and ScaleUp;
    # it is at least on par with ScaleOut.
    assert miss_ratios["Baseline"] > 5.0
    assert miss_ratios["ScaleUp"] > 1.5
    assert miss_ratios["ScaleOut"] > 0.8
    record_result(
        "fig12",
        p99_reduction_vs_baseline=reductions["Baseline"],
        p99_reduction_vs_scaleout=reductions["ScaleOut"],
        p99_reduction_vs_scaleup=reductions["ScaleUp"],
        miss_ratio_vs_baseline=miss_ratios["Baseline"],
        miss_ratio_vs_scaleout=miss_ratios["ScaleOut"],
        miss_ratio_vs_scaleup=miss_ratios["ScaleUp"])
