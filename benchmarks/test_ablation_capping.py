"""Ablation — fair-share vs heterogeneous/prioritized capping (the
mechanism behind Table I's penalty column and §III Q4)."""

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.largescale import simulate_rack
from repro.traces.synthetic import FleetConfig, generate_fleet


def test_ablation_capping_mode(benchmark, record_result):
    fleet = generate_fleet(FleetConfig(
        n_racks=4, weeks=3, seed=3, servers_per_rack_min=16,
        servers_per_rack_max=16, p99_util_beta=(2.0, 2.0),
        p99_util_range=(0.88, 0.97)))

    def sweep():
        out = {}
        for mode in ("heterogeneous", "fair"):
            penalties, caps = [], 0
            for rack in fleet.racks:
                policy = make_policy("SmartOClock", len(rack.servers))
                policy.capping_mode = mode
                result = simulate_rack(rack, policy)
                caps += result.cap_events
                if result.noc_penalty_events:
                    penalties.append(result.cap_penalty)
            out[mode] = (caps, float(np.mean(penalties))
                         if penalties else 0.0)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — capping blame assignment")
    for mode, (caps, penalty) in results.items():
        print(f"  {mode:<14} caps={caps:4d} bystander penalty={penalty:.3f}")

    het_penalty = results["heterogeneous"][1]
    fair_penalty = results["fair"][1]
    ratio = fair_penalty / max(het_penalty, 1e-9)
    print(f"  fair/heterogeneous penalty ratio: {ratio:.2f}x "
          f"(paper: 1.62-1.72x)")

    # Paper: heterogeneous budgets + prioritized capping reduce the
    # penalty inflicted on non-overclocked VMs.
    assert fair_penalty > het_penalty
    record_result("ablation_capping", fair_penalty=fair_penalty,
                  heterogeneous_penalty=het_penalty,
                  penalty_ratio=ratio, paper_penalty_ratio=1.62)
