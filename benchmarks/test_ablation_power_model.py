"""Ablation — power-model shape (DESIGN.md: V²f vs linear-in-f dynamic
power) and epoch length for the lifetime budget."""

import pytest

from repro.cluster.frequency import FrequencyPlan
from repro.cluster.power import PowerModel
from repro.reliability.wearout import EpochBudget

DAY = 86400.0
WEEK = 7 * DAY


def test_ablation_power_model_shape(benchmark, record_result):
    """The V²f law makes overclocking super-linearly expensive; a naive
    linear-in-f model would understate the cost by >2x."""
    plan = FrequencyPlan()
    model = PowerModel(plan=plan)

    def deltas():
        v2f = model.overclock_core_delta(1.0)
        turbo_dyn = model.core_dynamic_watts(1.0, plan.turbo_ghz)
        linear = turbo_dyn * (plan.overclock_max_ghz / plan.turbo_ghz - 1)
        return v2f, linear

    v2f_delta, linear_delta = benchmark(deltas)
    print(f"\nAblation — per-core overclock delta: "
          f"V²f={v2f_delta:.2f}W vs linear-in-f={linear_delta:.2f}W "
          f"({v2f_delta / linear_delta:.1f}x)")
    assert v2f_delta > 2 * linear_delta
    record_result("ablation_power_model", v2f_delta=v2f_delta,
                  linear_delta=linear_delta)


def test_ablation_epoch_length(benchmark, record_result):
    """Week epochs let weekend budget fund weekday peaks (§IV-B); with
    day epochs a 3-hour weekday peak cannot be covered at the same
    lifetime budget fraction."""
    fraction = 0.06  # ~1h/day, ~10.1h/week
    peak_s = 3 * 3600.0  # daily 3h peak, weekdays only

    def run(epoch_seconds):
        budget = EpochBudget(budget_fraction=fraction,
                             epoch_seconds=epoch_seconds,
                             carryover_cap_epochs=0.0)
        covered = 0.0
        for day in range(5):  # Monday-Friday peaks
            t = day * DAY + 10 * 3600.0
            step = 300.0
            remaining = peak_s
            while remaining > 0:
                if budget.consume(t, step):
                    covered += step
                t += step
                remaining -= step
        return covered / (5 * peak_s)

    def sweep():
        return {"day": run(DAY), "week": run(WEEK)}

    coverage = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nAblation — epoch length: peak coverage day={coverage['day']:.2f} "
          f"week={coverage['week']:.2f}")
    # Week epochs pool the whole allowance: better peak coverage.
    assert coverage["week"] > coverage["day"]
    record_result("ablation_epoch", **coverage)
