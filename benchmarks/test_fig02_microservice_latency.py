"""Fig. 2 — P99 tail latency of the 8 SocialNet microservices under
Baseline / Overclock / ScaleOut at three load levels."""


def test_fig02_microservice_latency(benchmark, record_result):
    from repro.experiments.characterization import (
        fig2_fig3_microservice_sweep,
    )

    sweep = benchmark(fig2_fig3_microservice_sweep)
    by_key = {(p.service, p.load, p.environment): p for p in sweep}
    services = sorted({p.service for p in sweep})

    print("\nFig. 2 — P99 latency (ms); * marks SLO violations")
    print(f"{'service':<14}{'SLO':>7} | " + " | ".join(
        f"{load:^23}" for load in ("low", "medium", "high")))
    print(f"{'':<14}{'':>7} | " + " | ".join(
        f"{'Base':>7}{'OC':>8}{'SOut':>8}" for _ in range(3)))
    for service in services:
        cells = []
        for load in ("low", "medium", "high"):
            for env in ("Baseline", "Overclock", "ScaleOut"):
                p = by_key[(service, load, env)]
                mark = "*" if not p.meets_slo else " "
                cells.append(f"{p.p99_ms:7.1f}{mark}")
        slo = by_key[(service, "low", "Baseline")].slo_ms
        print(f"{service:<14}{slo:>7.1f} | " + "".join(cells))

    # Paper findings:
    # (1) Overclock keeps latency below Baseline everywhere.
    for key, p in by_key.items():
        service, load, env = key
        if env == "Overclock":
            assert p.p99_ms < by_key[(service, load, "Baseline")].p99_ms
    # (2) ScaleOut (2 VMs provisioned for peak) clearly beats Baseline at
    # high load, and is at or near the best environment for most
    # services.  (Frequency-bound services with many workers can tie or
    # slightly favor Overclock: faster cores shorten every request.)
    for service in services:
        assert by_key[(service, "high", "ScaleOut")].p99_ms < \
            by_key[(service, "high", "Baseline")].p99_ms
    best_count = sum(
        1 for service in services
        if by_key[(service, "high", "ScaleOut")].p99_ms <=
        by_key[(service, "high", "Overclock")].p99_ms)
    assert best_count >= len(services) // 2
    # (3) Usr meets its SLO at loads where UrlShort long failed.
    assert by_key[("Usr", "medium", "Baseline")].meets_slo
    assert not by_key[("UrlShort", "low", "Baseline")].meets_slo
    # (4) Overclock rescues some Baseline SLO violations entirely.
    rescued = sum(
        1 for service in services for load in ("low", "medium", "high")
        if not by_key[(service, load, "Baseline")].meets_slo
        and by_key[(service, load, "Overclock")].meets_slo)
    assert rescued >= 1

    violations = {
        env: sum(1 for p in sweep
                 if p.environment == env and not p.meets_slo)
        for env in ("Baseline", "Overclock", "ScaleOut")
    }
    print(f"SLO violations: {violations}")
    record_result("fig02", rescued_by_overclock=rescued, **violations)
