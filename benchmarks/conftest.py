"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints
the series/rows it produced, asserts the paper's qualitative findings, and
records headline numbers into ``benchmarks/latest_results.json`` (consumed
when updating EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

_RESULTS: dict[str, dict] = {}
_RESULTS_PATH = Path(__file__).parent / "latest_results.json"


@pytest.fixture
def record_result():
    """Record {experiment: {metric: value}} for EXPERIMENTS.md."""

    def _record(experiment: str, **metrics) -> None:
        _RESULTS.setdefault(experiment, {}).update(
            {k: (round(v, 4) if isinstance(v, float) else v)
             for k, v in metrics.items()})

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _RESULTS:
        merged = {}
        if _RESULTS_PATH.exists():
            try:
                merged = json.loads(_RESULTS_PATH.read_text())
            except json.JSONDecodeError:
                merged = {}
        merged.update(_RESULTS)
        _RESULTS_PATH.write_text(json.dumps(merged, indent=2,
                                            sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def cluster_results():
    """The full §V-A cluster run, shared by Figs. 12-14 benchmarks."""
    from repro.experiments.cluster import ClusterConfig, cluster_experiment
    return cluster_experiment(ClusterConfig())


@pytest.fixture(scope="session")
def table1_results():
    """The full Table-I sweep, shared by its benchmark and ablations."""
    from repro.experiments.largescale import cluster_class_fleets, table1
    fleets = cluster_class_fleets(n_racks=6, weeks=3, seed=1)
    return table1(fleets)
