#!/usr/bin/env python3
"""Subprocess driver for the fleet-scale memory benchmark.

Runs the ``repro`` CLI with the given arguments in *this* process and
appends one JSON line with the driver's wall-clock and peak RSS
(``resource.getrusage(RUSAGE_SELF)`` — pool workers are separate
processes and excluded, which is the point: the bounded-memory claim is
about the driver never holding the fleet).

A real file rather than ``python -c`` so the ``spawn`` start method can
re-import ``__main__`` in pool workers.

Usage::

    python benchmarks/fleet_driver.py table1 --racks 200 --weeks 2 ...
"""

import json
import resource
import sys
import time


def main(argv: list) -> int:
    from repro.cli import main as repro_main

    start = time.perf_counter()
    code = repro_main(argv)
    elapsed = time.perf_counter() - start
    usage = resource.getrusage(resource.RUSAGE_SELF)
    print(json.dumps({
        "exit_code": code,
        "elapsed_s": round(elapsed, 3),
        "driver_peak_rss_kb": usage.ru_maxrss,  # KiB on Linux
    }))
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
