"""Ablation — metrics-based vs schedule-based overclocking triggers.

The paper evaluates the metric-based policy and notes that "experiments
with the schedule-based policy show slightly better results due to better
predictability" (§V-A).  This bench reproduces that where the schedule
matches demand, and surfaces the interplay it glosses over: for loads
*beyond* overclocking capacity, constant scheduled boosting masks the
latency signal the reactive scale-out fallback needs.
"""

import dataclasses

from repro.experiments.cluster import ClusterConfig, run_environment


def test_ablation_trigger(benchmark, record_result):
    base = ClusterConfig(duration_s=5400.0)

    def sweep():
        return {
            trigger: run_environment(
                "SmartOClock",
                dataclasses.replace(base, wi_trigger=trigger))
            for trigger in ("metrics", "schedule")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation — WI trigger")
    for trigger, result in results.items():
        print(f"  {trigger:<9} grants={result.overclock_grants:4d} "
              f"rejections={result.overclock_rejections:3d}")
        for cls in ("low", "medium", "high"):
            m = result.per_class[cls]
            print(f"    {cls:7s} p99={m.p99_ms:7.1f}ms "
                  f"miss={m.missed_slo_fraction:.4f}")

    metrics, schedule = results["metrics"], results["schedule"]

    # (1) Paper: schedule-based is slightly better where the window
    # matches demand — the low and medium classes (overclocking covers
    # their whole peak, with zero detection lag and no dithering).
    for cls in ("low", "medium"):
        assert schedule.per_class[cls].p99_ms <= \
            metrics.per_class[cls].p99_ms
        assert schedule.per_class[cls].missed_slo_fraction <= \
            metrics.per_class[cls].missed_slo_fraction

    # (2) Predictability: scheduled requests are reserved once per window
    # instead of the metric trigger's start/stop churn — an order of
    # magnitude fewer grant events, none rejected.
    assert schedule.overclock_grants < metrics.overclock_grants / 4
    assert schedule.overclock_rejections == 0

    # (3) The interplay finding: for the high class (demand beyond
    # overclocked capacity) the metric trigger's on/off dips let the
    # reactive fallback see the violation and scale out sooner, so
    # metrics-based is NOT worse there.
    assert metrics.per_class["high"].missed_slo_fraction <= \
        schedule.per_class["high"].missed_slo_fraction + 1e-9

    record_result(
        "ablation_trigger",
        schedule_medium_p99=schedule.per_class["medium"].p99_ms,
        metrics_medium_p99=metrics.per_class["medium"].p99_ms,
        schedule_grants=schedule.overclock_grants,
        metrics_grants=metrics.overclock_grants)
