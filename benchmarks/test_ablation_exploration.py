"""Ablation — exploration machinery (DESIGN.md: warning threshold and
step size sweep; the paper's NoFeedback/NoWarning rows isolate the same
mechanism at the policy level)."""

import numpy as np

from repro.core.policies import make_policy
from repro.experiments.largescale import simulate_rack
from repro.traces.synthetic import FleetConfig, generate_fleet


def build_fleet():
    return generate_fleet(FleetConfig(
        n_racks=4, weeks=3, seed=21, servers_per_rack_min=16,
        servers_per_rack_max=16, p99_util_beta=(2.0, 2.0),
        p99_util_range=(0.86, 0.96)))


def run_variant(fleet, *, warning_fraction=0.95, step_watts=20.0):
    caps, demanded, successful = 0, 0, 0.0
    for rack in fleet.racks:
        policy = make_policy("SmartOClock", len(rack.servers))
        policy.explore_step_watts = step_watts
        result = simulate_rack(rack, policy,
                               warning_fraction=warning_fraction)
        caps += result.cap_events
        demanded += result.demanded_core_ticks
        successful += result.successful_core_ticks
    return caps, successful / max(1, demanded)


def test_ablation_warning_threshold(benchmark, record_result):
    fleet = build_fleet()

    def sweep():
        return {wf: run_variant(fleet, warning_fraction=wf)
                for wf in (0.90, 0.95, 0.99)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — warning threshold")
    for wf, (caps, success) in results.items():
        print(f"  warning={wf:.2f}: caps={caps:5d} success={success:.3f}")

    # Raising the warning threshold lets exploration run closer to the
    # limit, but every extra capping event voids boosts rack-wide: caps
    # grow monotonically with the threshold, and the extra exploration
    # does NOT buy extra success — the early warning is genuinely
    # protective, which is why the paper runs it at 95 %.
    assert results[0.90][0] <= results[0.95][0] <= results[0.99][0]
    best_success = max(success for _, success in results.values())
    assert results[0.95][1] >= best_success - 0.05
    record_result("ablation_warning", **{
        f"caps_at_{int(wf * 100)}": caps
        for wf, (caps, _) in results.items()})


def test_ablation_exploration_step(benchmark, record_result):
    fleet = build_fleet()

    def sweep():
        return {step: run_variant(fleet, step_watts=step)
                for step in (5.0, 20.0, 80.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — exploration step size")
    for step, (caps, success) in results.items():
        print(f"  step={step:5.0f}W: caps={caps:5d} success={success:.3f}")

    # All step sizes must stay far safer than no-exploration-control
    # (NaiveOClock) while keeping a usable success rate.
    naive_caps = 0
    for rack in fleet.racks:
        naive_caps += simulate_rack(
            rack, make_policy("NaiveOClock", len(rack.servers))).cap_events
    print(f"  NaiveOClock caps for reference: {naive_caps}")
    for caps, success in results.values():
        assert caps < naive_caps
        assert success > 0.3
    record_result("ablation_step", naive_caps=naive_caps, **{
        f"caps_step_{int(step)}": caps
        for step, (caps, _) in results.items()})
