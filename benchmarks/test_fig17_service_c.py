"""Fig. 17 — Service C: 5-minute utilization peaks across a weekday
shrink under overclocking."""

import numpy as np


def test_fig17_service_c(benchmark, record_result):
    from repro.experiments.production import fig17_service_c

    result = benchmark(fig17_service_c)

    print("\nFig. 17 — Service C 5-minute peaks (4-hourly max util)")
    buckets = np.arange(0, 24, 4)
    for name, series in (("baseline", result.baseline_util),
                         ("overclock", result.overclocked_util)):
        maxima = [float(np.max(series[(result.hours >= b)
                                      & (result.hours < b + 4)]))
                  for b in buckets]
        print(f"  {name:<9}:", " ".join(f"{v:5.2f}" for v in maxima))
    print(f"  peak reduction: {result.peak_reduction:.1%} (paper: 16%)")

    # Paper finding: overclocking reduces the provisioning-relevant
    # 5-minute peaks by ~16 %.
    assert 0.10 <= result.peak_reduction <= 0.22
    record_result("fig17", peak_reduction=result.peak_reduction,
                  paper_peak_reduction=0.16)
