"""Fig. 4 — WebConf VM- vs deployment-level CPU utilization with and
without overclocking."""


def test_fig04_webconf(benchmark, record_result):
    from repro.experiments.characterization import fig4_webconf

    results = benchmark(fig4_webconf)

    print("\nFig. 4 — WebConf utilization")
    for env, row in results.items():
        print(f"  {env:<10} VM1={row['vm1_util']:.2f} "
              f"VM2={row['vm2_util']:.2f} "
              f"deployment={row['deployment_util']:.2f} "
              f"target_met={row['meets_target']}")

    base, oc = results["Baseline"], results["Overclock"]
    # The paper's point: overclocking VM2 does lower its utilization...
    assert oc["vm2_util"] < base["vm2_util"]
    # ...but it was unnecessary: the deployment-level goal (< 50 %) was
    # already met without it.
    assert base["meets_target"]
    assert not base["overclock_needed"]
    record_result("fig04",
                  vm2_base=base["vm2_util"], vm2_oc=oc["vm2_util"],
                  deployment_base=base["deployment_util"])
