"""Fig. 3 — CPU utilization of the SocialNet microservices for the same
sweep as Fig. 2."""


def test_fig03_microservice_util(benchmark, record_result):
    from repro.experiments.characterization import (
        fig2_fig3_microservice_sweep,
    )

    sweep = benchmark(fig2_fig3_microservice_sweep)
    by_key = {(p.service, p.load, p.environment): p for p in sweep}
    services = sorted({p.service for p in sweep})

    print("\nFig. 3 — CPU utilization")
    print(f"{'service':<14} | " + " | ".join(
        f"{load:^23}" for load in ("low", "medium", "high")))
    for service in services:
        cells = []
        for load in ("low", "medium", "high"):
            for env in ("Baseline", "Overclock", "ScaleOut"):
                cells.append(
                    f"{by_key[(service, load, env)].utilization:8.2f}")
        print(f"{service:<14} | " + "".join(cells))

    # Overclocking lowers utilization (same work, faster cores);
    # ScaleOut halves it (two VMs).
    for service in services:
        for load in ("low", "medium", "high"):
            base = by_key[(service, load, "Baseline")].utilization
            assert by_key[(service, load, "Overclock")].utilization \
                <= base + 1e-9
            if base < 0.5:  # unclamped region
                assert by_key[(service, load, "ScaleOut")].utilization \
                    <= 0.55 * base + 1e-9

    # The workload-agnostic-trigger insight (§III Q1): a service can
    # violate its SLO at LOWER utilization than another that meets it.
    urlshort = by_key[("UrlShort", "low", "Baseline")]
    usr = by_key[("Usr", "medium", "Baseline")]
    assert not urlshort.meets_slo and usr.meets_slo
    assert urlshort.utilization < usr.utilization
    record_result("fig03",
                  urlshort_low_util=urlshort.utilization,
                  usr_medium_util=usr.utilization)
