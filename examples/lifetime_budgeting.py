#!/usr/bin/env python3
"""Lifetime budgeting walkthrough: how SmartOClock turns the vendor
ageing model into a weekly overclocking allowance, and what naive
overclocking does to a CPU (the paper's Fig. 7 / §III Q2 analysis).

Run with::

    python examples/lifetime_budgeting.py
"""

from repro.cluster.frequency import DEFAULT_FREQUENCY_PLAN
from repro.reliability import (
    DEFAULT_AGING_MODEL,
    EpochBudget,
    OverclockBudgetPlanner,
)

HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


def main() -> None:
    model = DEFAULT_AGING_MODEL
    plan = DEFAULT_FREQUENCY_PLAN
    v_ref = model.reference_volts
    v_oc = plan.voltage(plan.overclock_max_ghz)

    print("=== the vendor ageing model ===")
    print(f"rated point: {v_ref:.2f} V at {plan.turbo_ghz} GHz; "
          f"overclocked: {v_oc:.2f} V at {plan.overclock_max_ghz} GHz")
    print(f"voltage acceleration at the overclocked point: "
          f"{model.voltage_acceleration(v_oc):.1f}x wear")
    print(f"conservative fleet usage (50% util at rated voltage) ages "
          f"{model.aging(5.0, 0.5, v_ref):.1f} years over 5 years")
    naive = 0.5 * model.wear_rate(0.5, v_ref) + 0.5 * model.wear_rate(
        0.5, v_oc)
    print(f"naively overclocking 50% of the time burns 5 years of "
          f"lifetime in {5.0 / naive:.2f} years")

    print("\n=== deriving the budget (offline vendor analysis) ===")
    planner = OverclockBudgetPlanner(model)
    for util in (0.3, 0.5, 0.7):
        fraction = planner.budget_fraction(baseline_utilization=util,
                                           oc_utilization=util,
                                           oc_volts=v_oc)
        print(f"  at {util:.0%} utilization: lifetime-neutral overclock "
              f"share = {fraction:.1%} of time "
              f"({fraction * WEEK / HOUR:.1f} h/week)")
    cold = planner.budget_fraction(
        baseline_utilization=0.5, oc_utilization=0.5, oc_volts=v_oc,
        temp_k=model.reference_temp_k - 25.0)
    print(f"  with advanced cooling (-25 K): "
          f"{cold:.1%} of time — cooling enlarges the budget")

    print("\n=== enforcing it with weekly epochs ===")
    budget = EpochBudget(budget_fraction=0.10)
    print(f"weekly allowance: "
          f"{budget.epoch_allowance_seconds / HOUR:.1f} h; "
          f"per-weekday share: "
          f"{budget.per_weekday_seconds() / HOUR:.1f} h")
    # A scheduled 2h peak reserves budget; metrics-based bursts draw from
    # the remaining pool.
    budget.reserve(0.0, 5 * 2 * HOUR)
    print(f"after reserving 5 weekday 2h peaks: "
          f"{budget.available_seconds(0.0) / HOUR:.1f} h unreserved")
    burst = 0
    while budget.consume(0.0, 15 * 60.0):
        burst += 1
    print(f"that funds {burst} unscheduled 15-minute bursts this week")
    print(f"next week the allowance refreshes: "
          f"{budget.available_seconds(WEEK + 1) / HOUR:.1f} h available "
          f"(reservation released, no carryover used)")


if __name__ == "__main__":
    main()
