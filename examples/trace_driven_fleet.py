#!/usr/bin/env python3
"""Trace-driven fleet study: generate a synthetic production fleet,
compare the §V-B policies on it, and print a Table-I-style summary.

This is the paper's large-scale simulation pipeline in miniature —
scale ``n_racks``/``weeks`` up for a full-size run.

Run with::

    python examples/trace_driven_fleet.py
"""

import numpy as np

from repro.experiments.largescale import compare_policies, format_table1
from repro.prediction.predictor import evaluate_template
from repro.prediction.templates import TemplateKind
from repro.traces.synthetic import FleetConfig, generate_fleet

WEEK = 7 * 86400.0


def main() -> None:
    print("generating a synthetic high-power fleet "
          "(8 racks x 3 weeks at 5-minute granularity)...")
    fleet = generate_fleet(FleetConfig(
        n_racks=8, weeks=3, seed=42,
        p99_util_beta=(2.0, 2.0), p99_util_range=(0.86, 0.96)))

    stats = fleet.rack_utilization_stats()
    print(f"  median rack P99 power utilization: "
          f"{float(np.median(stats['p99'])):.2f}")

    # --- how predictable is this fleet? ----------------------------------
    rack = fleet.racks[0]
    power = rack.total_power()
    hist = rack.times < WEEK
    print("\ntemplate accuracy on rack 0 (RMSE, W):")
    for kind in TemplateKind:
        ev = evaluate_template(kind, rack.times[hist], power[hist],
                               rack.times[~hist], power[~hist])
        print(f"  {kind.value:<9} {ev.rmse:8.1f}")

    # --- policy comparison -------------------------------------------------
    print("\nrunning the five policies over every rack "
          "(weeks 2-3 scored)...")
    scores = compare_policies(fleet)
    print(format_table1({"This fleet": scores}))

    smart = scores["SmartOClock"]
    naive = scores["NaiveOClock"]
    print(f"\nSmartOClock vs NaiveOClock: "
          f"{1 - smart.cap_events / max(1, naive.cap_events):.0%} fewer "
          f"capping events, success rate "
          f"{naive.success_rate:.0%} -> {smart.success_rate:.0%}")


if __name__ == "__main__":
    main()
