#!/usr/bin/env python3
"""Quickstart: deploy SmartOClock on a small rack and watch one
latency-triggered overclocking cycle end to end.

Run with::

    python examples/quickstart.py
"""

from repro.cluster import (
    DEFAULT_POWER_MODEL,
    Datacenter,
    Rack,
    Server,
    VirtualMachine,
)
from repro.core import MetricsTriggerPolicy, SmartOClockPlatform

TURBO = DEFAULT_POWER_MODEL.plan.turbo_ghz


def main() -> None:
    # --- physical plant: one rack, four servers -------------------------
    rack = Rack("rack-0", power_limit_watts=1200.0)
    servers = [Server(f"server-{i}", DEFAULT_POWER_MODEL)
               for i in range(4)]
    for server in servers:
        rack.add_server(server)
    datacenter = Datacenter("quickstart-dc")
    datacenter.add_rack(rack)

    # --- the SmartOClock control plane -----------------------------------
    platform = SmartOClockPlatform(datacenter)

    # --- a latency-critical service with one VM -------------------------
    vm = VirtualMachine(8, utilization=0.85, name="frontend-0",
                        priority=10)
    servers[0].place_vm(vm)
    service = platform.register_service(
        "frontend",
        metrics_policy=MetricsTriggerPolicy(
            start_fraction=0.7, stop_fraction=0.3, consecutive=2))
    platform.attach_vm("frontend", vm, target_freq_ghz=4.0)

    slo_ms = 10.0
    print(f"{'t(s)':>5} {'p99(ms)':>8} {'freq(GHz)':>10} "
          f"{'server W':>9} {'state':>12}")

    # Simulated latency telemetry: a load spike from t=30 to t=150.
    def p99_at(t: float) -> float:
        return 9.0 if 30.0 <= t < 150.0 else 2.0

    for tick in range(24):
        now = tick * 10.0
        p99 = p99_at(now)
        service.observe(now, p99, slo_ms)
        platform.tick(now, dt=10.0)
        state = ("overclocked"
                 if platform.soas["server-0"].is_overclocking(vm.vm_id)
                 else "turbo")
        print(f"{now:5.0f} {p99:8.1f} {vm.freq_ghz:10.2f} "
              f"{servers[0].power_watts():9.1f} {state:>12}")

    stats = platform.grant_statistics()
    print(f"\nrequests granted: {stats['granted']}, "
          f"rejected: {stats['rejected_power']} (power) "
          f"+ {stats['rejected_lifetime']} (lifetime)")
    core = servers[0].vm_cores(vm)[0]
    counter = platform.soas["server-0"].wear_counters[core.index]
    print(f"core 0 overclocked for {counter.overclock_seconds:.0f}s, "
          f"wear accrued {counter.wear_seconds:.0f} reference-seconds "
          f"over {counter.elapsed_seconds:.0f}s elapsed")


if __name__ == "__main__":
    main()
