#!/usr/bin/env python3
"""Microservice cluster study: the paper's §V-A experiment in miniature.

Runs the same load trace through the four environments (Baseline,
ScaleOut, ScaleUp, SmartOClock) on a shrunken cluster and prints the
latency / cost / energy story of Figs. 12-14.

Run with::

    python examples/microservice_autoscaling.py
"""

from repro.experiments.cluster import (
    ENVIRONMENTS,
    ClusterConfig,
    run_environment,
)


def main() -> None:
    config = ClusterConfig(
        n_lc_servers=6, n_ml_servers=6, n_scaleout_servers=4,
        class_counts=(("low", 2), ("medium", 2), ("high", 2)),
        duration_s=3600.0, tick_s=10.0,
        peak_start_s=1200.0, peak_duration_s=1200.0, seed=7)

    print("running the four environments over an identical load trace "
          "(6 latency-critical + 6 ML servers, 1h with a 20min peak)...\n")
    results = {}
    for env in ENVIRONMENTS:
        results[env] = run_environment(env, config)
        high = results[env].per_class["high"]
        print(f"  {env:<12} high-load p99={high.p99_ms:7.1f}ms "
              f"missed={high.missed_slo_fraction:6.3%} "
              f"instances={high.avg_instances:4.2f} "
              f"grants={results[env].overclock_grants:3d} "
              f"scale-outs={results[env].scale_outs:2d}")

    smart = results["SmartOClock"]
    scale_out = results["ScaleOut"]
    base = results["Baseline"]
    print("\nsummary (high-load class):")
    print(f"  tail latency vs Baseline : "
          f"-{1 - smart.per_class['high'].p99_ms / base.per_class['high'].p99_ms:.0%}")
    print(f"  instances vs ScaleOut    : "
          f"-{1 - smart.per_class['high'].avg_instances / scale_out.per_class['high'].avg_instances:.0%}")
    print(f"  total energy vs ScaleOut : "
          f"{smart.total_energy_j / scale_out.total_energy_j - 1:+.1%}")


if __name__ == "__main__":
    main()
