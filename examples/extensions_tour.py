#!/usr/bin/env python3
"""Tour of the §VI extensions: container-granularity overclocking, GPU
components, online wear counters, and automatic threshold inference.

Run with::

    python examples/extensions_tour.py
"""

import numpy as np

from repro.cluster import (
    DEFAULT_POWER_MODEL,
    GPU_FREQUENCY_PLAN,
    GPU_POWER_MODEL,
    Container,
    ContainerHost,
    Rack,
    Server,
    VirtualMachine,
)
from repro.core import infer_trigger_policy
from repro.reliability import CoreWearoutCounter, OnlineWearBudget

MAX = DEFAULT_POWER_MODEL.plan.overclock_max_ghz
HOUR = 3600.0


def container_granularity() -> None:
    print("=== finer-grained overclocking (containers in VMs) ===")
    server = Server("host", DEFAULT_POWER_MODEL)
    vm = VirtualMachine(16, name="guest")
    server.place_vm(vm)
    host = ContainerHost(vm, server)
    host.add_container(Container("api-frontend", 4, utilization=0.95))
    host.add_container(Container("batch-worker", 12, utilization=0.40))
    baseline = server.power_watts()

    server.set_vm_frequency(vm, MAX)
    whole_vm_delta = server.power_watts() - baseline
    server.set_vm_frequency(vm, DEFAULT_POWER_MODEL.plan.turbo_ghz)

    host.boost_container("api-frontend", MAX)
    container_delta = server.power_watts() - baseline
    print(f"boosting the whole 16-core VM: +{whole_vm_delta:5.1f} W")
    print(f"boosting only the hot 4-core container: "
          f"+{container_delta:5.1f} W "
          f"({container_delta / whole_vm_delta:.0%} of the cost)")


def gpu_components() -> None:
    print("\n=== the same framework on GPUs ===")
    device = Server("gpu-0", GPU_POWER_MODEL)
    job = VirtualMachine(108, utilization=0.9, name="training")
    device.place_vm(job)
    boost = device.power_watts()
    device.set_vm_frequency(job, GPU_FREQUENCY_PLAN.overclock_max_ghz)
    print(f"boost clock {GPU_FREQUENCY_PLAN.turbo_ghz:.2f} GHz: "
          f"{boost:.0f} W; overclocked "
          f"{GPU_FREQUENCY_PLAN.overclock_max_ghz:.2f} GHz: "
          f"{device.power_watts():.0f} W "
          f"(+{device.power_watts() / boost - 1:.0%} power for "
          f"+{GPU_FREQUENCY_PLAN.overclock_max_ghz / GPU_FREQUENCY_PLAN.turbo_ghz - 1:.0%} clock)")


def online_wear() -> None:
    print("\n=== online wear counters vs the offline 10% budget ===")
    v_oc = DEFAULT_POWER_MODEL.plan.voltage(MAX)
    for util in (0.25, 0.5, 0.85):
        counter = CoreWearoutCounter()
        counter.accumulate(48 * HOUR, util, 1.05)
        budget = OnlineWearBudget(counter, warmup_seconds=0.0)
        fraction = budget.sustainable_fraction(util, v_oc)
        verdict = "more than" if fraction > 0.10 else "less than"
        print(f"core at {util:.0%} utilization: counters allow "
              f"{fraction:5.1%} overclocking — {verdict} the offline 10%")


def threshold_inference() -> None:
    print("\n=== inferring overclocking thresholds from history ===")
    rng = np.random.default_rng(3)
    t = np.linspace(0, 6 * np.pi, 2000)
    history = 2.0 + 7.0 * np.clip(np.sin(t), 0, 1) \
        + rng.normal(0, 0.2, 2000)
    slo = 12.0
    inferred = infer_trigger_policy(history, slo, budget_fraction=0.10)
    print(f"history P90 → scale-up at {inferred.scale_up_value:.2f} ms "
          f"({inferred.policy.start_fraction:.0%} of the {slo:.0f} ms SLO)")
    print(f"estimated boost impact → scale-down at "
          f"{inferred.scale_down_value:.2f} ms "
          f"(dithering-safe hysteresis)")


if __name__ == "__main__":
    container_granularity()
    gpu_components()
    online_wear()
    threshold_inference()
